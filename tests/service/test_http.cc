/**
 * @file
 * Conformance tests of the HTTP/1.1 observability gateway, plus the
 * metrics-correctness property: the Prometheus `/metrics` text and
 * the framed `stats` verb are two encodings of the same counters and
 * must agree exactly.
 *
 * The conformance tests run against a server with no stressmark kit:
 * they exercise parsing, routing, limits, and status codes
 * (400/404/405/413/431/503) without ever reaching a computation. The
 * metrics test builds the reduced kit and runs real queries.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/faultnet.hh"
#include "service/http.hh"
#include "service/protocol.hh"
#include "service/resilient.hh"
#include "service/server.hh"

namespace
{

using namespace vn;
using namespace vn::service;

/** Context with no kit: conformance requests never compute. */
vn::AnalysisContext
bareContext()
{
    vn::AnalysisContext ctx;
    ctx.campaign.cache_dir.clear();
    return ctx;
}

/** ServerConfig with both listeners on ephemeral ports. */
ServerConfig
httpEnabledConfig()
{
    ServerConfig config;
    config.port = 0;      // never a hard-coded port: parallel ctest
    config.http_port = 0; // must not collide across test binaries
    return config;
}

int
connectTo(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

std::string
simpleGet(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

std::string
jsonPost(const std::string &body)
{
    return "POST /v1/query HTTP/1.1\r\nHost: localhost\r\n"
           "Content-Type: application/json\r\n"
           "Content-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(HttpConformance, HealthReadyAndMetricsEndpoints)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int port = server.httpPort();
    ASSERT_GT(port, 0);

    HttpResponse health = httpRequestForTest(port, simpleGet("/healthz"));
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    HttpResponse ready = httpRequestForTest(port, simpleGet("/readyz"));
    EXPECT_EQ(ready.status, 200);
    EXPECT_EQ(ready.body, "ready\n");

    HttpResponse metrics =
        httpRequestForTest(port, simpleGet("/metrics"));
    EXPECT_EQ(metrics.status, 200);
    const std::string *type = metrics.header("content-type");
    ASSERT_NE(type, nullptr);
    EXPECT_NE(type->find("version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics.body.find(
                  "# TYPE vnoised_requests_received_total counter"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("vnoised_queue_depth 0"),
              std::string::npos);
    EXPECT_NE(metrics.body.find(
                  "vnoised_request_latency_ms_bucket{le=\"+Inf\"}"),
              std::string::npos);

    // A query string is routing-transparent.
    HttpResponse with_query =
        httpRequestForTest(port, simpleGet("/healthz?verbose=1"));
    EXPECT_EQ(with_query.status, 200);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, NotFoundAndMethodNotAllowed)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int port = server.httpPort();

    EXPECT_EQ(httpRequestForTest(port, simpleGet("/nope")).status, 404);
    EXPECT_EQ(httpRequestForTest(port, simpleGet("/metrics/sub")).status,
              404);

    HttpResponse post_metrics = httpRequestForTest(
        port, "POST /metrics HTTP/1.1\r\nHost: x\r\n"
              "Content-Length: 0\r\n\r\n");
    EXPECT_EQ(post_metrics.status, 405);
    const std::string *allow = post_metrics.header("allow");
    ASSERT_NE(allow, nullptr);
    EXPECT_EQ(*allow, "GET");

    HttpResponse get_query =
        httpRequestForTest(port, simpleGet("/v1/query"));
    EXPECT_EQ(get_query.status, 405);
    allow = get_query.header("allow");
    ASSERT_NE(allow, nullptr);
    EXPECT_EQ(*allow, "POST");

    EXPECT_EQ(httpRequestForTest(
                  port, "DELETE /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                  .status,
              405);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, RequestLineAndHeaderStrictness)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int port = server.httpPort();

    auto statusOf = [port](const std::string &raw) {
        return httpRequestForTest(port, raw).status;
    };

    // Missing request-line parts, wrong version, doubled spaces.
    EXPECT_EQ(statusOf("GET/healthz HTTP/1.1\r\n\r\n"), 400);
    EXPECT_EQ(statusOf("GET /healthz\r\n\r\n"), 400);
    EXPECT_EQ(statusOf("GET /healthz HTTP/1.0\r\n\r\n"), 400);
    EXPECT_EQ(statusOf("GET  /healthz HTTP/1.1\r\n\r\n"), 400);
    EXPECT_EQ(statusOf("GET /healthz HTTP/1.1 extra\r\n\r\n"), 400);
    // Target must be origin-form.
    EXPECT_EQ(statusOf("GET healthz HTTP/1.1\r\n\r\n"), 400);
    // Malformed headers: no colon, space in name, folded line,
    // control byte in value.
    EXPECT_EQ(statusOf("GET /healthz HTTP/1.1\r\nweird\r\n\r\n"), 400);
    EXPECT_EQ(
        statusOf("GET /healthz HTTP/1.1\r\nBad Name: v\r\n\r\n"), 400);
    EXPECT_EQ(statusOf(
                  "GET /healthz HTTP/1.1\r\nA: b\r\n folded\r\n\r\n"),
              400);
    EXPECT_EQ(statusOf("GET /healthz HTTP/1.1\r\nA: b\x01\r\n\r\n"),
              400);
    // Unknown scheme-ish method token is still a token: routed, 405.
    EXPECT_EQ(statusOf("BREW /healthz HTTP/1.1\r\n\r\n"), 405);
    // Non-token method is a parse error.
    EXPECT_EQ(statusOf("GE T /healthz HTTP/1.1\r\n\r\n"), 400);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, OversizedHeadersAre431)
{
    auto ctx = bareContext();
    ServerConfig config = httpEnabledConfig();
    config.http.max_header_bytes = 256;
    Server server(ctx, config);
    server.start();
    int port = server.httpPort();

    // Terminated but oversized header section.
    std::string big = "GET /healthz HTTP/1.1\r\nX-Pad: " +
                      std::string(400, 'a') + "\r\n\r\n";
    EXPECT_EQ(httpRequestForTest(port, big).status, 431);

    // Unterminated dribble past the limit: the server must not wait
    // for a terminator that never comes before rejecting.
    EXPECT_EQ(httpRequestForTest(
                  port, "GET /" + std::string(600, 'x'))
                  .status,
              431);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, ContentLengthEdgeCases)
{
    auto ctx = bareContext();
    ServerConfig config = httpEnabledConfig();
    config.http.max_body_bytes = 1024;
    Server server(ctx, config);
    server.start();
    int port = server.httpPort();

    // Absent on POST /v1/query: explicit 400 with a JSON error.
    HttpResponse absent = httpRequestForTest(
        port, "POST /v1/query HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(absent.status, 400);
    EXPECT_NE(absent.body.find("Content-Length"), std::string::npos);

    // Zero: an empty body is not a JSON object.
    HttpResponse zero = httpRequestForTest(
        port, "POST /v1/query HTTP/1.1\r\nHost: x\r\n"
              "Content-Length: 0\r\n\r\n");
    EXPECT_EQ(zero.status, 400);
    EXPECT_NE(zero.body.find("malformed_body"), std::string::npos);

    // Overlong: declared length beyond the cap, body never read.
    HttpResponse overlong = httpRequestForTest(
        port, "POST /v1/query HTTP/1.1\r\nHost: x\r\n"
              "Content-Length: 4096\r\n\r\n");
    EXPECT_EQ(overlong.status, 413);

    // Mismatched: duplicate and non-numeric Content-Length.
    EXPECT_EQ(httpRequestForTest(
                  port, "POST /v1/query HTTP/1.1\r\n"
                        "Content-Length: 2\r\nContent-Length: 3\r\n"
                        "\r\n{}")
                  .status,
              400);
    EXPECT_EQ(httpRequestForTest(
                  port, "POST /v1/query HTTP/1.1\r\n"
                        "Content-Length: two\r\n\r\n")
                  .status,
              400);
    EXPECT_EQ(httpRequestForTest(
                  port, "POST /v1/query HTTP/1.1\r\n"
                        "Content-Length: -1\r\n\r\n")
                  .status,
              400);

    // Chunked transfer coding is rejected outright.
    EXPECT_EQ(httpRequestForTest(
                  port, "POST /v1/query HTTP/1.1\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"
                        "0\r\n\r\n")
                  .status,
              400);

    // A GET must not carry a body.
    EXPECT_EQ(httpRequestForTest(
                  port, "GET /healthz HTTP/1.1\r\n"
                        "Content-Length: 2\r\n\r\nhi")
                  .status,
              400);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, PipelinedRequestsAnswerInOrder)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int fd = connectTo(server.httpPort());

    std::string two = simpleGet("/healthz") + simpleGet("/readyz");
    ASSERT_EQ(::send(fd, two.data(), two.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(two.size()));

    std::string buffer;
    HttpResponse first, second, third;
    ASSERT_TRUE(readHttpResponse(fd, buffer, first));
    ASSERT_TRUE(readHttpResponse(fd, buffer, second));
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(first.body, "ok\n");
    EXPECT_EQ(second.status, 200);
    EXPECT_EQ(second.body, "ready\n");

    // The connection is still usable afterwards (keep-alive).
    std::string again = simpleGet("/metrics");
    ASSERT_EQ(::send(fd, again.data(), again.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(again.size()));
    ASSERT_TRUE(readHttpResponse(fd, buffer, third));
    EXPECT_EQ(third.status, 200);
    ::close(fd);

    // Connection: close is honored.
    int fd2 = connectTo(server.httpPort());
    std::string closing = "GET /healthz HTTP/1.1\r\n"
                          "Connection: close\r\n\r\n";
    ASSERT_EQ(
        ::send(fd2, closing.data(), closing.size(), MSG_NOSIGNAL),
        static_cast<ssize_t>(closing.size()));
    std::string buffer2;
    HttpResponse closed;
    ASSERT_TRUE(readHttpResponse(fd2, buffer2, closed));
    EXPECT_EQ(closed.status, 200);
    char byte;
    EXPECT_EQ(::read(fd2, &byte, 1), 0); // server hung up
    ::close(fd2);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, PrematureCloseIsHarmless)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int port = server.httpPort();

    // Half a request line, then close; half a body, then close.
    int fd = connectTo(port);
    ASSERT_GT(::send(fd, "GET /hea", 8, MSG_NOSIGNAL), 0);
    ::close(fd);
    fd = connectTo(port);
    std::string partial = "POST /v1/query HTTP/1.1\r\n"
                          "Content-Length: 100\r\n\r\n{\"verb";
    ASSERT_GT(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL),
              0);
    ::close(fd);

    // The gateway survives and keeps serving.
    EXPECT_EQ(httpRequestForTest(port, simpleGet("/healthz")).status,
              200);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, SlowLorisHitsReadTimeout)
{
    auto ctx = bareContext();
    ServerConfig config = httpEnabledConfig();
    config.http.read_timeout_s = 0.3;
    Server server(ctx, config);
    server.start();

    int fd = connectTo(server.httpPort());
    // Partial headers, then silence: the server must hang up on its
    // own rather than hold the connection (and its thread) forever.
    ASSERT_GT(::send(fd, "GET /healthz HTTP/1.1\r\nX-Slow: 1", 32,
                     MSG_NOSIGNAL),
              0);
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char byte;
    ssize_t got = ::read(fd, &byte, 1);
    EXPECT_EQ(got, 0) << "expected EOF from the read timeout";
    ::close(fd);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, QueryValidationErrors)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int port = server.httpPort();

    HttpResponse bad_json = httpRequestForTest(port, jsonPost("{nope"));
    EXPECT_EQ(bad_json.status, 400);
    EXPECT_NE(bad_json.body.find("malformed_body"), std::string::npos);

    HttpResponse not_object = httpRequestForTest(port, jsonPost("[1]"));
    EXPECT_EQ(not_object.status, 400);

    HttpResponse no_verb =
        httpRequestForTest(port, jsonPost("{\"id\":1}"));
    EXPECT_EQ(no_verb.status, 400);
    EXPECT_NE(no_verb.body.find("bad_request"), std::string::npos);

    HttpResponse unknown = httpRequestForTest(
        port, jsonPost("{\"verb\":\"frobnicate\"}"));
    EXPECT_EQ(unknown.status, 400);
    EXPECT_NE(unknown.body.find("unknown_verb"), std::string::npos);

    HttpResponse shutdown_verb = httpRequestForTest(
        port, jsonPost("{\"verb\":\"shutdown\"}"));
    EXPECT_EQ(shutdown_verb.status, 400);

    HttpResponse bad_params = httpRequestForTest(
        port, jsonPost("{\"verb\":\"sweep\","
                       "\"params\":{\"freq_hz\":\"fast\"}}"));
    EXPECT_EQ(bad_params.status, 400);

    HttpResponse bad_deadline = httpRequestForTest(
        port, jsonPost("{\"verb\":\"sweep\","
                       "\"params\":{\"freq_hz\":2.4e6},"
                       "\"deadline_ms\":\"soon\"}"));
    EXPECT_EQ(bad_deadline.status, 400);

    // Control verbs that ARE served: ping and stats.
    HttpResponse ping = httpRequestForTest(
        port, jsonPost("{\"id\":7,\"verb\":\"ping\"}"));
    EXPECT_EQ(ping.status, 200);
    Json ping_body = Json::parse(ping.body);
    EXPECT_TRUE(ping_body.at("ok").asBool());
    EXPECT_EQ(ping_body.at("id").asNumber(), 7.0);
    EXPECT_TRUE(ping_body.at("result").at("pong").asBool());

    HttpResponse stats = httpRequestForTest(
        port, jsonPost("{\"verb\":\"stats\"}"));
    EXPECT_EQ(stats.status, 200);
    Json stats_body = Json::parse(stats.body);
    EXPECT_TRUE(stats_body.at("result").has("requests"));

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, DeadlineExpiredMapsTo504)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    server.pauseForTest(true);

    HttpResponse response;
    std::thread requester([&] {
        response = httpRequestForTest(
            server.httpPort(),
            jsonPost("{\"verb\":\"sweep\","
                     "\"params\":{\"freq_hz\":2.4e6},"
                     "\"deadline_ms\":0}"));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.pauseForTest(false);
    requester.join();
    EXPECT_EQ(response.status, 504);
    EXPECT_NE(response.body.find("deadline_exceeded"),
              std::string::npos);

    server.beginShutdown();
    server.wait();
}

TEST(HttpConformance, OverloadedMapsTo503)
{
    auto ctx = bareContext();
    ServerConfig config = httpEnabledConfig();
    config.dispatcher.queue_depth = 1;
    Server server(ctx, config);
    server.start();
    server.pauseForTest(true);

    // Fill the queue over the framed protocol (deadline 0, so the
    // eventual drain answers it without computing — no kit needed).
    int fd = connectTo(server.port());
    Json fill = Json::object();
    fill.set("id", Json::number(1));
    fill.set("verb", Json::str("sweep"));
    Json params = Json::object();
    params.set("freq_hz", Json::number(2.4e6));
    fill.set("params", std::move(params));
    fill.set("deadline_ms", Json::number(0));
    ASSERT_TRUE(writeFrame(fd, fill.dump()));

    // Give the framed request time to be admitted.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    HttpResponse overloaded = httpRequestForTest(
        server.httpPort(),
        jsonPost("{\"verb\":\"sweep\",\"params\":{\"freq_hz\":1e6}}"));
    EXPECT_EQ(overloaded.status, 503);
    EXPECT_NE(overloaded.body.find("overloaded"), std::string::npos);
    const std::string *retry = overloaded.header("retry-after");
    ASSERT_NE(retry, nullptr);

    server.beginShutdown();
    server.wait();
    ::close(fd);
}

TEST(HttpConformance, ReadyzReportsDraining)
{
    auto ctx = bareContext();
    Server server(ctx, httpEnabledConfig());
    server.start();
    int port = server.httpPort();

    EXPECT_EQ(httpRequestForTest(port, simpleGet("/readyz")).status,
              200);
    server.beginShutdown();
    // The gateway keeps serving while the drain runs: liveness stays
    // green, readiness flips to 503 so a load balancer stops routing.
    HttpResponse ready = httpRequestForTest(port, simpleGet("/readyz"));
    EXPECT_EQ(ready.status, 503);
    EXPECT_EQ(ready.body, "draining\n");
    EXPECT_EQ(httpRequestForTest(port, simpleGet("/healthz")).status,
              200);
    server.wait();
}

// ---------------------------------------------------------------------
// Metrics correctness: /metrics vs the framed `stats` verb.

const vn::CoreModel &
testCore()
{
    static vn::CoreModel c;
    return c;
}

/** Reduced-cost kit (same recipe as test_service.cc). */
const vn::StressmarkKit &
testKit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 300;
        params.search.ipc_filter_keep = 32;
        params.search.ipc_eval_instrs = 200;
        params.search.power_eval_instrs = 800;
        vn::StressmarkKit built(testCore(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

/** Parse Prometheus text exposition into name{labels} -> value. */
std::map<std::string, double>
parseExposition(const std::string &text)
{
    std::map<std::string, double> values;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            continue;
        values[line.substr(0, sp)] =
            std::strtod(line.c_str() + sp + 1, nullptr);
    }
    return values;
}

/** Assert every numeric leaf of a stats section matches /metrics.
 *  Counter sections get `_total` appended per leaf; gauge-flavored
 *  sections (resilience) use their leaf names as-is. */
void
expectSectionMatches(const Json &node, const std::string &path,
                     const std::map<std::string, double> &metrics,
                     bool append_total = true)
{
    if (node.isNumber()) {
        std::string name =
            "vnoised_" + path + (append_total ? "_total" : "");
        auto it = metrics.find(name);
        ASSERT_NE(it, metrics.end()) << name << " missing from /metrics";
        EXPECT_EQ(it->second, node.asNumber()) << name;
        return;
    }
    ASSERT_TRUE(node.isObject());
    for (const auto &[key, value] : node.members())
        expectSectionMatches(value, path + "_" + key, metrics,
                             append_total);
}

TEST(HttpMetrics, MetricsMatchFramedStatsExactly)
{
    vn::AnalysisContext ctx;
    ctx.kit = &testKit();
    ctx.window = 6e-6;
    ctx.unsync_draws = 2;
    ctx.consecutive_events = 200;
    ctx.campaign.cache_dir.clear();

    // Submit index 3 (the resilient sweep below; the three HTTP
    // sweeps take 0..2) is rejected `overloaded` once, forcing
    // exactly one retry into the resilience counters.
    ScriptedFaultHook hook(FaultSchedule().overloaded(3, 1, 2.0));
    ServerConfig config = httpEnabledConfig();
    config.dispatcher.fault = &hook;
    Server server(ctx, config);
    server.start();
    int http_port = server.httpPort();

    // Known outcomes: two distinct sweeps and a repeat over HTTP (the
    // repeat recomputes — sequential, so no coalescing guarantee), one
    // unknown verb and one ping over the framed protocol.
    for (const char *freq : {"2.4e6", "1.1e6", "2.4e6"}) {
        HttpResponse r = httpRequestForTest(
            http_port, jsonPost(std::string("{\"verb\":\"sweep\","
                                            "\"params\":{\"freq_hz\":") +
                                freq + ",\"synchronized\":true}}"));
        ASSERT_EQ(r.status, 200);
        Json body = Json::parse(r.body);
        ASSERT_TRUE(body.at("ok").asBool());
        EXPECT_EQ(body.at("result").at("freq_hz").asNumber(),
                  std::strtod(freq, nullptr));
    }

    Client client(server.port());
    EXPECT_EQ(client.ping(), kProtocolVersion);
    EXPECT_THROW(client.call("frobnicate", Json::object()),
                 ServiceError);

    // A resilient sweep wired to the server's registry: attempt one
    // is rejected by the fault hook, attempt two computes. The retry
    // and pool gauges land in the registry and must round-trip
    // through both encodings below.
    ResilientClientConfig rconfig;
    rconfig.port = server.port();
    rconfig.retry.backoff_base_ms = 1.0;
    rconfig.retry.backoff_cap_ms = 10.0;
    rconfig.retry.call_deadline_ms = 120000.0;
    rconfig.metrics = &server.metricsMutable();
    ResilientClient resilient(rconfig);
    FreqSweepPoint retried =
        resilient.sweep(SweepRequest{{3.3e6, true}});
    EXPECT_EQ(retried.freq_hz, 3.3e6);
    EXPECT_EQ(resilient.counters().retries, 1u);
    EXPECT_EQ(hook.injected(), 1u);

    // Durability counters are process-wide: a corrupt cache entry
    // encountered by ANY ResultCache in the process must surface in
    // this server's cache section — campaigns open short-lived cache
    // instances, so the section aggregates across them.
    runtime::CacheCounters cache_before =
        runtime::ResultCache::globalCounters();
    {
        std::string scratch_dir = "http_metrics_cache_scratch";
        std::filesystem::remove_all(scratch_dir);
        runtime::ResultCache scratch(scratch_dir);
        vn::KeyValueFile kv;
        kv.set("x", 1.0);
        ASSERT_TRUE(scratch.store(1, kv));
        for (const auto &entry :
             std::filesystem::directory_iterator(scratch_dir)) {
            std::ofstream out(entry.path(), std::ios::trunc);
            out << "torn";
        }
        EXPECT_FALSE(scratch.load(1).has_value());
        std::filesystem::remove_all(scratch_dir);
    }

    // Source of truth, encoding one: the framed stats document.
    Json stats = client.stats();
    // Encoding two: the Prometheus exposition. No requests run
    // between the two reads, so every counter must agree exactly.
    HttpResponse scrape =
        httpRequestForTest(http_port, simpleGet("/metrics"));
    ASSERT_EQ(scrape.status, 200);
    std::map<std::string, double> metrics =
        parseExposition(scrape.body);

    for (const char *section :
         {"requests", "batching", "campaign", "server"})
        expectSectionMatches(stats.at(section), section, metrics);
    // The resilience section mixes counters and gauges, so its leaves
    // already carry `_total` where they are counters.
    expectSectionMatches(stats.at("resilience"), "resilience", metrics,
                         /*append_total=*/false);
    // The cache durability section's leaves are pre-suffixed `_total`.
    expectSectionMatches(stats.at("cache"), "cache", metrics,
                         /*append_total=*/false);

    // The injected corruption above is visible, exactly once, in both
    // encodings.
    EXPECT_EQ(stats.at("cache").at("corrupt_total").asNumber(),
              static_cast<double>(cache_before.corrupt + 1));
    EXPECT_EQ(metrics.at("vnoised_cache_corrupt_total"),
              static_cast<double>(cache_before.corrupt + 1));
    EXPECT_NE(scrape.body.find(
                  "# TYPE vnoised_cache_corrupt_total counter"),
              std::string::npos);

    // Spot-check the known outcomes on both sides.
    EXPECT_EQ(metrics.at("vnoised_requests_completed_ok_total"), 4.0);
    EXPECT_EQ(metrics.at("vnoised_requests_rejected_overloaded_total"),
              1.0);
    EXPECT_EQ(metrics.at("vnoised_server_unknown_verbs_total"), 1.0);
    EXPECT_EQ(stats.at("requests").at("completed_ok").asNumber(), 4.0);

    // The resilient sweep's one retry (and its idle pooled
    // connection) are visible in both encodings.
    EXPECT_EQ(metrics.at("vnoised_resilience_retries_total"), 1.0);
    EXPECT_EQ(metrics.at("vnoised_resilience_breaker_opens_total"),
              0.0);
    EXPECT_EQ(metrics.at("vnoised_resilience_breaker_state"), 0.0);
    EXPECT_EQ(metrics.at("vnoised_resilience_pool_in_use"), 0.0);
    EXPECT_EQ(metrics.at("vnoised_resilience_pool_idle"), 1.0);
    EXPECT_NE(scrape.body.find(
                  "# TYPE vnoised_resilience_retries_total counter"),
              std::string::npos);
    EXPECT_NE(scrape.body.find(
                  "# TYPE vnoised_resilience_breaker_state gauge"),
              std::string::npos);

    // Histogram coherence: one latency observation per completion,
    // one batch-size observation per executed batch.
    double completed =
        stats.at("requests").at("completed_ok").asNumber() +
        stats.at("requests").at("completed_error").asNumber();
    EXPECT_EQ(metrics.at("vnoised_request_latency_ms_count"),
              completed);
    EXPECT_EQ(metrics.at("vnoised_batch_size_count"),
              stats.at("batching").at("batches").asNumber());
    // Buckets are cumulative and end at +Inf == count.
    EXPECT_EQ(
        metrics.at("vnoised_request_latency_ms_bucket{le=\"+Inf\"}"),
        completed);

    // The gateway accounts for itself too: the three sweep POSTs are
    // counted; the scrape increments after rendering its own text.
    EXPECT_EQ(metrics.at("vnoised_http_requests_total"), 3.0);
    EXPECT_EQ(metrics.at("vnoised_http_errors_total"), 0.0);

    server.beginShutdown();
    server.wait();
}

} // namespace
