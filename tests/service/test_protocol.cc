/**
 * @file
 * Wire-level tests of the vnoised protocol: the JSON value type, frame
 * framing over real sockets, the request/result codecs, and the
 * server's behaviour under hostile input (malformed frames, oversized
 * payloads, truncated streams, unknown verbs) — every failure must
 * produce a structured error, never a crash or a hang.
 *
 * No stressmark kit is needed: nothing here executes a compute verb,
 * so the server runs with `ctx.kit == nullptr`.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/server.hh"

namespace
{

using namespace vn;
using namespace vn::service;

TEST(Json, RoundTripsDoublesExactly)
{
    for (double v : {1.0 / 3.0, 6.02214076e23, -0.1, 5e-324,
                     1.7976931348623157e308, 0.0}) {
        Json j = Json::number(v);
        double back = Json::parse(j.dump()).asNumber();
        EXPECT_EQ(back, v) << j.dump();
    }
}

TEST(Json, ParsesDocumentsAndPreservesOrder)
{
    Json j = Json::parse(
        R"({"b":1,"a":[true,null,"x\né"],"c":{"d":2.5}})");
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j.members()[0].first, "b");
    EXPECT_EQ(j.members()[1].first, "a");
    EXPECT_EQ(j.at("a").size(), 3u);
    EXPECT_TRUE(j.at("a").at(0).asBool());
    EXPECT_TRUE(j.at("a").at(1).isNull());
    EXPECT_EQ(j.at("a").at(2).asString(), "x\n\xc3\xa9");
    EXPECT_EQ(j.at("c").at("d").asNumber(), 2.5);

    Json again = Json::parse(j.dump());
    EXPECT_EQ(again.dump(), j.dump());
}

TEST(Json, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"\x01\"",
          "{\"a\":1} trailing", "nan", "inf", "[1 2]", "\"unterminated"}) {
        EXPECT_THROW(Json::parse(bad), JsonError) << bad;
    }
}

TEST(Json, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < Json::kMaxDepth + 1; ++i)
        deep += "[";
    for (int i = 0; i < Json::kMaxDepth + 1; ++i)
        deep += "]";
    EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(Frames, RoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string sent = R"({"id":1,"verb":"ping"})";
    ASSERT_TRUE(writeFrame(fds[0], sent));
    std::string got;
    EXPECT_EQ(readFrame(fds[1], got, kDefaultMaxFrameBytes),
              FrameStatus::Ok);
    EXPECT_EQ(got, sent);

    // Empty payload is a valid frame.
    ASSERT_TRUE(writeFrame(fds[0], ""));
    EXPECT_EQ(readFrame(fds[1], got, kDefaultMaxFrameBytes),
              FrameStatus::Ok);
    EXPECT_EQ(got, "");

    ::close(fds[0]);
    EXPECT_EQ(readFrame(fds[1], got, kDefaultMaxFrameBytes),
              FrameStatus::Eof);
    ::close(fds[1]);
}

TEST(Frames, DetectsOversizedAndTruncated)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Header declaring more than the limit: detected before any
    // payload is read (or allocated).
    unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(fds[0], huge, 4), 4);
    std::string got;
    EXPECT_EQ(readFrame(fds[1], got, 1024), FrameStatus::Oversized);

    // Header promising 100 bytes but the stream ends after 10.
    unsigned char header[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fds[0], header, 4), 4);
    ASSERT_EQ(::write(fds[0], "0123456789", 10), 10);
    ::close(fds[0]);
    EXPECT_EQ(readFrame(fds[1], got, 1024), FrameStatus::Truncated);
    ::close(fds[1]);
}

TEST(Codec, RequestsRoundTripThroughJson)
{
    std::vector<AnyRequest> requests;
    requests.push_back(SweepRequest{{1234567.891011, true}});
    requests.push_back(MapRequest{
        Mapping{WorkloadClass::Max, WorkloadClass::Idle,
                WorkloadClass::Medium, WorkloadClass::Max,
                WorkloadClass::Idle, WorkloadClass::Idle},
        2.4e6});
    requests.push_back(MarginRequest{{2.4e6, 100}, 0.0025});
    // Seed above 1e9 on purpose: the full exactly-representable range
    // (<= 2^53) must survive the encode/decode round trip.
    requests.push_back(GuardbandRequest{{500, 2.5, (1ull << 52) + 11}});
    requests.push_back(TraceRequest{{2.4e6, 10e-6, 3, 16}});

    for (const AnyRequest &request : requests) {
        Json params = encodeRequestParams(request);
        AnyRequest back = decodeRequestParams(requestVerb(request),
                                              Json::parse(params.dump()));
        EXPECT_EQ(requestKey(back), requestKey(request));
        EXPECT_EQ(requestVerb(back), requestVerb(request));
    }
}

TEST(Codec, RejectsOutOfRangeParams)
{
    auto params = [](const char *text) { return Json::parse(text); };
    EXPECT_THROW(
        decodeRequestParams(Verb::Sweep, params(R"({"freq_hz":-1})")),
        JsonError);
    EXPECT_THROW(
        decodeRequestParams(Verb::Map,
                            params(R"({"mapping":[0,1]})")),
        JsonError);
    EXPECT_THROW(
        decodeRequestParams(Verb::Map,
                            params(R"({"mapping":[0,0,0,0,0,7]})")),
        JsonError);
    // 'events' is required (0 itself is legal: "no synchronization").
    EXPECT_THROW(decodeRequestParams(Verb::Margin,
                                     params(R"({"freq_hz":2e6})")),
                 JsonError);
    EXPECT_THROW(decodeRequestParams(
                     Verb::Trace,
                     params(R"({"freq_hz":2e6,"core":6})")),
                 JsonError);
    EXPECT_THROW(decodeRequestParams(
                     Verb::Trace,
                     params(R"({"freq_hz":2e6,"window":2e-3})")),
                 JsonError);
    // Seeds: negative must error loudly (not wrap to a huge uint64),
    // fractional is not an integer, above 2^53 is not exactly
    // representable in the wire format's doubles.
    EXPECT_THROW(decodeRequestParams(Verb::Guardband,
                                     params(R"({"seed":-1})")),
                 JsonError);
    EXPECT_THROW(decodeRequestParams(Verb::Guardband,
                                     params(R"({"seed":1.5})")),
                 JsonError);
    EXPECT_THROW(decodeRequestParams(Verb::Guardband,
                                     params(R"({"seed":1e16})")),
                 JsonError);
}

TEST(Codec, UnknownVerbNameIsRejected)
{
    EXPECT_FALSE(verbFromName("frobnicate").has_value());
    EXPECT_FALSE(verbFromName("").has_value());
    EXPECT_EQ(verbFromName("sweep"), Verb::Sweep);
}

/** Server with no kit: only control verbs and error paths exercised. */
class ProtocolServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        bool prev = vn::setQuiet(true);
        AnalysisContext ctx;
        ctx.campaign.cache_dir.clear();
        ServerConfig config;
        config.max_frame_bytes = 4096;
        server_ = std::make_unique<Server>(ctx, config);
        server_->start();
        vn::setQuiet(prev);
    }

    void
    TearDown() override
    {
        server_->beginShutdown();
        server_->wait();
    }

    /** Raw loopback connection to the test server. */
    int
    rawConnect()
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    }

    /** Send raw payload, read one response, return its error code. */
    std::string
    errorCodeFor(int fd, const std::string &payload)
    {
        EXPECT_TRUE(writeFrame(fd, payload));
        std::string response_text;
        EXPECT_EQ(readFrame(fd, response_text, kDefaultMaxFrameBytes),
                  FrameStatus::Ok);
        Json response = Json::parse(response_text);
        EXPECT_FALSE(response.at("ok").asBool());
        return response.at("error").at("code").asString();
    }

    std::unique_ptr<Server> server_;
};

TEST_F(ProtocolServerTest, MalformedFramesGetStructuredErrors)
{
    int fd = rawConnect();
    EXPECT_EQ(errorCodeFor(fd, "this is not json"), "malformed_frame");
    EXPECT_EQ(errorCodeFor(fd, "[1,2,3]"), "malformed_frame");
    EXPECT_EQ(errorCodeFor(fd, R"({"id":1})"), "bad_request");
    EXPECT_EQ(errorCodeFor(fd, R"({"id":1,"verb":"frobnicate"})"),
              "unknown_verb");
    EXPECT_EQ(errorCodeFor(
                  fd, R"({"id":1,"verb":"sweep",)"
                      R"("params":{"freq_hz":-5}})"),
              "bad_request");
    EXPECT_EQ(errorCodeFor(fd,
                           R"({"id":1,"verb":"sweep",)"
                           R"("params":{"freq_hz":2e6},)"
                           R"("deadline_ms":-1})"),
              "bad_request");
    // Non-numeric deadline_ms must be a structured error, not a
    // JsonError escaping into std::terminate.
    EXPECT_EQ(errorCodeFor(fd,
                           R"({"id":2,"verb":"sweep",)"
                           R"("params":{"freq_hz":2e6},)"
                           R"("deadline_ms":"5"})"),
              "bad_request");
    EXPECT_EQ(errorCodeFor(fd,
                           R"({"id":3,"verb":"sweep",)"
                           R"("params":{"freq_hz":2e6},)"
                           R"("deadline_ms":null})"),
              "bad_request");

    // The connection survived all of the above.
    EXPECT_TRUE(writeFrame(fd, R"({"id":9,"verb":"ping"})"));
    std::string text;
    ASSERT_EQ(readFrame(fd, text, kDefaultMaxFrameBytes),
              FrameStatus::Ok);
    Json pong = Json::parse(text);
    EXPECT_TRUE(pong.at("ok").asBool());
    EXPECT_EQ(pong.at("id").asNumber(), 9.0);
    ::close(fd);
}

TEST_F(ProtocolServerTest, OversizedFrameAnsweredThenClosed)
{
    int fd = rawConnect();
    std::string big(8192, 'x'); // above the 4096-byte server limit
    ASSERT_TRUE(writeFrame(fd, big));
    std::string text;
    ASSERT_EQ(readFrame(fd, text, kDefaultMaxFrameBytes),
              FrameStatus::Ok);
    Json response = Json::parse(text);
    EXPECT_FALSE(response.at("ok").asBool());
    EXPECT_EQ(response.at("error").at("code").asString(),
              "oversized_frame");
    // The stream cannot be resynchronized, so the server hangs up.
    EXPECT_EQ(readFrame(fd, text, kDefaultMaxFrameBytes),
              FrameStatus::Eof);
    ::close(fd);
}

TEST_F(ProtocolServerTest, TruncatedStreamDoesNotWedgeTheServer)
{
    int fd = rawConnect();
    unsigned char header[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fd, header, 4), 4);
    ASSERT_EQ(::write(fd, "0123456789", 10), 10);
    ::close(fd); // mid-frame hangup

    // The server shrugged it off and still serves new connections.
    Client client(server_->port());
    EXPECT_EQ(client.ping(), kProtocolVersion);

    Json stats = client.stats();
    EXPECT_GE(stats.at("server").at("connections").asNumber(), 2.0);
}

TEST_F(ProtocolServerTest, StatsCountsProtocolErrors)
{
    int fd = rawConnect();
    EXPECT_EQ(errorCodeFor(fd, "garbage"), "malformed_frame");
    EXPECT_EQ(errorCodeFor(fd, R"({"verb":"nope"})"), "unknown_verb");
    ::close(fd);

    Client client(server_->port());
    Json stats = client.stats();
    EXPECT_GE(stats.at("server").at("malformed").asNumber(), 1.0);
    EXPECT_GE(stats.at("server").at("unknown_verbs").asNumber(), 1.0);
    EXPECT_EQ(stats.at("protocol").asNumber(),
              static_cast<double>(kProtocolVersion));
}

TEST_F(ProtocolServerTest, ClosedConnectionsAreReaped)
{
    // A daemon serving many short-lived clients must reclaim the fd
    // and reader thread of each as it disconnects, not at shutdown.
    for (int i = 0; i < 16; ++i) {
        Client client(server_->port());
        EXPECT_EQ(client.ping(), kProtocolVersion);
    }
    // Reaping is asynchronous: the accept thread joins finished
    // readers when their wake byte arrives. Poll briefly.
    size_t live = server_->liveConnectionsForTest();
    for (int i = 0; i < 300 && live != 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        live = server_->liveConnectionsForTest();
    }
    EXPECT_EQ(live, 0u);

    ServerCounters counters = server_->serverCounters();
    EXPECT_GE(counters.connections, 16u);
}

TEST_F(ProtocolServerTest, ClientSurfacesWireErrorsAsServiceError)
{
    Client client(server_->port());
    try {
        client.call("frobnicate", Json::object());
        FAIL() << "expected ServiceError";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), "unknown_verb");
    }
}

} // namespace
