/**
 * @file
 * Conformance tests of the chunked streaming result path:
 *
 *  - StreamProtocol.*: the pure frame helpers — chunk-count ceiling,
 *    checksum formatting, and envelope classification (malformed
 *    frames classify Bad, ordinary responses classify None).
 *  - Stream.*: the live contract. A >1 MiB trace streams through a
 *    default-framed vnoised and reassembles byte-identically to the
 *    in-process campaign AND to an unstreamed transport of the same
 *    result; a client without the opt-in gets a structured
 *    `result_too_large`; every sequencing violation (out-of-order,
 *    duplicate, short, checksum mismatch, single-frame mid-stream)
 *    poisons the connection with ONE `bad_response`; a client that
 *    disconnects mid-stream reaps the server's writer
 *    (`stream_aborts`); and a faultnet mid-frame cut mid-stream
 *    surfaces as ONE `io_error` to a plain client and is absorbed by
 *    ONE ResilientClient retry with byte-identical reassembly
 *    (scripts/check.sh replays this with two different seeds via
 *    VNOISE_FAULT_SEED).
 *  - StreamRelay.*: the StreamSink relay mode the router builds on —
 *    frames arrive in wire order with verified checksums, and a sink
 *    that gives up aborts the call with a non-retryable `aborted`.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "analysis/serving.hh"
#include "runtime/hash.hh"
#include "service/client.hh"
#include "service/codec.hh"
#include "service/faultnet.hh"
#include "service/resilient.hh"
#include "service/server.hh"

namespace
{

using namespace vn;
using namespace vn::service;

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Reduced-cost kit (same recipe as test_service.cc). */
const vn::StressmarkKit &
kit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 300;
        params.search.ipc_filter_keep = 32;
        params.search.ipc_eval_instrs = 200;
        params.search.power_eval_instrs = 800;
        vn::StressmarkKit built(core(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

/** A per-process scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &leaf)
{
    std::string dir = ::testing::TempDir() + "vnoise_stream_" +
                      std::to_string(::getpid()) + "_" + leaf;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

/**
 * Compute-capable context. Every server in this file (and the
 * in-process reference) shares one campaign cache directory, so the
 * 60000-sample trace below is computed exactly once per test run and
 * every later round-trip replays it bit-identically from the cache —
 * the assertions exercise the transport, not the simulator.
 */
vn::AnalysisContext
computeContext()
{
    static std::string cache = scratchDir("campaign_cache");
    vn::AnalysisContext ctx;
    ctx.kit = &kit();
    ctx.window = 6e-6;
    ctx.unsync_draws = 2;
    ctx.consecutive_events = 200;
    ctx.campaign.cache_dir = cache;
    return ctx;
}

/** 60000 undecimated samples: ~1.2 MB encoded, past the 1 MiB frame
 *  cap — the result that MUST stream. */
DroopTraceSpec
bigTraceSpec()
{
    DroopTraceSpec spec;
    spec.freq_hz = 2.4e6;
    spec.window = 6e-5;
    spec.core = 1;
    spec.decimation = 1;
    return spec;
}

Json
bigTraceParams()
{
    return encodeRequestParams(AnyRequest(TraceRequest{bigTraceSpec()}));
}

/** The in-process campaign's canonical dump of the big trace. */
const std::string &
bigTraceReferenceDump()
{
    static std::string dump = [] {
        auto ctx = computeContext();
        auto traces = droopTraces(
            ctx, std::vector<DroopTraceSpec>{bigTraceSpec()});
        return encodeResult(AnyResult(traces[0])).dump();
    }();
    return dump;
}

/**
 * A scripted one-shot server: accepts one connection, reads one
 * request frame, and answers with whatever frames the script builds
 * from the request's id — the only honest way to put a misbehaving
 * streamer on the wire.
 */
class FakeStreamServer
{
  public:
    using Script = std::function<std::vector<Json>(const Json &id)>;

    explicit FakeStreamServer(Script script)
    {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(listen_fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        EXPECT_EQ(::bind(listen_fd_,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 1), 0);
        socklen_t len = sizeof(addr);
        EXPECT_EQ(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr *>(&addr),
                                &len),
                  0);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this, script = std::move(script)] {
            int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0)
                return;
            std::string payload;
            if (readFrame(fd, payload, kDefaultMaxFrameBytes) ==
                FrameStatus::Ok) {
                Json id;
                try {
                    Json request = Json::parse(payload);
                    if (request.isObject() && request.has("id"))
                        id = request.at("id");
                } catch (const JsonError &) {
                }
                for (const Json &frame : script(id))
                    if (!writeFrame(fd, frame.dump()))
                        break;
            }
            // Linger until the client hangs up so its close is clean.
            char sink[256];
            while (::read(fd, sink, sizeof(sink)) > 0) {
            }
            ::close(fd);
        });
    }

    ~FakeStreamServer()
    {
        if (thread_.joinable())
            thread_.join();
        ::close(listen_fd_);
    }

    int port() const { return port_; }

  private:
    int listen_fd_ = -1;
    int port_ = -1;
    std::thread thread_;
};

/** Expect `call` to throw a ServiceError with `code`; returns it. */
template <typename Call>
ServiceError
expectError(const std::string &code, Call &&call)
{
    try {
        call();
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), code) << e.what();
        return e;
    }
    ADD_FAILURE() << "expected ServiceError " << code;
    return ServiceError("", "");
}

// ---------------------------------------------------------------------
// StreamProtocol: pure frame helpers.

TEST(StreamProtocol, ChunkCountCeilsAndFloorsAtOne)
{
    EXPECT_EQ(streamChunkCount(0, 1024), 1u)
        << "an empty result still streams one (empty) chunk";
    EXPECT_EQ(streamChunkCount(1, 1024), 1u);
    EXPECT_EQ(streamChunkCount(1024, 1024), 1u);
    EXPECT_EQ(streamChunkCount(1025, 1024), 2u);
    EXPECT_EQ(streamChunkCount(10 * 1024, 1024), 10u);
    EXPECT_EQ(streamChunkCount(10 * 1024 + 1, 1024), 11u);
    EXPECT_EQ(streamChunkCount(7, 0), 7u)
        << "a zero chunk size must not divide by zero";
}

TEST(StreamProtocol, ChecksumIsSixteenLowercaseHexOfTheWholeText)
{
    std::string checksum = streamChecksumHex("hello");
    EXPECT_EQ(checksum.size(), 16u);
    for (char c : checksum)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << checksum;
    EXPECT_EQ(checksum, streamChecksumHex("hello"));
    EXPECT_NE(checksum, streamChecksumHex("hellp"));
    // Chunk-wise accumulation equals the whole-text checksum — the
    // property every relay checkpoint relies on.
    uint64_t rolling = runtime::kFnvOffset;
    rolling = runtime::fnv1aAppend(rolling, "he");
    rolling = runtime::fnv1aAppend(rolling, "llo");
    EXPECT_EQ(rolling, runtime::fnv1a("hello"));
}

TEST(StreamProtocol, EnvelopesClassifyAndMalformedFramesAreBad)
{
    Json id = Json::number(7);
    Json begin = makeStreamBegin(id, "trace", 1000, 4, 256);
    Json chunk = makeStreamChunk(id, 0, "data");
    Json end = makeStreamEnd(id, 4, streamChecksumHex("data"));
    EXPECT_EQ(streamFrameKind(begin), StreamFrameKind::Begin);
    EXPECT_EQ(streamFrameKind(chunk), StreamFrameKind::Chunk);
    EXPECT_EQ(streamFrameKind(end), StreamFrameKind::End);
    EXPECT_TRUE(begin.at("ok").asBool());
    EXPECT_EQ(begin.at("bytes").asNumber(), 1000.0);
    EXPECT_EQ(begin.at("chunks").asNumber(), 4.0);

    // Ordinary responses are not stream frames.
    EXPECT_EQ(streamFrameKind(makeOkResponse(id, Json::object())),
              StreamFrameKind::None);
    EXPECT_EQ(streamFrameKind(makeErrorResponse(
                  id, WireError{"overloaded", "full"})),
              StreamFrameKind::None);

    // Required fields missing or mistyped classify Bad, never None —
    // a client must not mistake a torn envelope for a result.
    Json bad_kind = Json::object();
    bad_kind.set("stream", Json::str("nonsense"));
    EXPECT_EQ(streamFrameKind(bad_kind), StreamFrameKind::Bad);
    Json no_seq = makeStreamChunk(id, 0, "data");
    no_seq.set("seq", Json::str("zero"));
    EXPECT_EQ(streamFrameKind(no_seq), StreamFrameKind::Bad);
    Json no_checksum = makeStreamEnd(id, 4, "abc");
    no_checksum.set("checksum", Json::number(1));
    EXPECT_EQ(streamFrameKind(no_checksum), StreamFrameKind::Bad);
    Json no_bytes = makeStreamBegin(id, "trace", 1000, 4, 256);
    no_bytes.set("bytes", Json::str("many"));
    EXPECT_EQ(streamFrameKind(no_bytes), StreamFrameKind::Bad);
}

// ---------------------------------------------------------------------
// Stream: the live contract.

TEST(Stream, LargeTraceStreamsBitIdenticalToCampaignAndUnstreamed)
{
    auto ctx = computeContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    // Opted-in client: the >1 MiB result arrives chunked and
    // reassembles to the in-process campaign's exact bytes.
    Client streamed(server.port());
    streamed.setAcceptStream(true);
    Json result = streamed.call("trace", bigTraceParams());
    EXPECT_EQ(result.dump(), bigTraceReferenceDump());
    EXPECT_GT(result.dump().size(), kDefaultMaxFrameBytes)
        << "the fixture must exceed the frame cap to prove anything";

    ServerCounters counters = server.serverCounters();
    EXPECT_EQ(counters.streams, 1u);
    EXPECT_EQ(counters.stream_chunks,
              streamChunkCount(bigTraceReferenceDump().size(),
                               config.stream_chunk_bytes));
    EXPECT_EQ(counters.stream_aborts, 0u);

    // The decoded trace is usable, not just byte-equal.
    DroopTrace trace =
        std::get<DroopTrace>(decodeResult(Verb::Trace, result));
    EXPECT_EQ(trace.v.size(), 60000u);

    // A client that never opted in gets a structured reject, not a
    // torn frame and not a silent truncation.
    Client plain(server.port());
    ServiceError too_large = expectError("result_too_large", [&] {
        plain.call("trace", bigTraceParams());
    });
    EXPECT_NE(std::string(too_large.what()).find("accept_stream"),
              std::string::npos)
        << "the reject must tell the client how to opt in";
    EXPECT_EQ(server.serverCounters().result_too_large, 1u);

    server.beginShutdown();
    server.wait();

    // Unstreamed transport of the SAME result: a server whose frame
    // cap fits the payload answers in one frame; the bytes must match
    // the streamed reassembly exactly. (A raw-framed reader, because
    // Client's read cap is the default frame size by design.)
    ServerConfig wide = config;
    wide.max_frame_bytes = 8u << 20;
    Server single(ctx, wide);
    single.start();
    {
        Client raw(single.port());
        Json request = Json::object();
        request.set("id", Json::number(1));
        request.set("verb", Json::str("trace"));
        request.set("params", bigTraceParams());
        ASSERT_TRUE(writeFrame(raw.nativeHandle(), request.dump()));
        std::string payload;
        ASSERT_EQ(readFrame(raw.nativeHandle(), payload, 16u << 20),
                  FrameStatus::Ok);
        Json response = Json::parse(payload);
        ASSERT_TRUE(response.at("ok").asBool());
        EXPECT_EQ(streamFrameKind(response), StreamFrameKind::None)
            << "a fitting result must not stream";
        EXPECT_EQ(response.at("result").dump(),
                  bigTraceReferenceDump());
    }
    EXPECT_EQ(single.serverCounters().streams, 0u);
    single.beginShutdown();
    single.wait();
}

TEST(Stream, SequencingViolationsPoisonTheConnectionAsBadResponse)
{
    const std::string text = "0123456789"; // the streamed "result"
    const std::string checksum = streamChecksumHex(text);

    // Each scenario scripts one protocol violation; the client must
    // answer every one of them with bad_response AND a closed
    // connection (the next call fails without touching the wire).
    struct Scenario
    {
        const char *name;
        FakeStreamServer::Script script;
    };
    const std::vector<Scenario> scenarios = {
        {"out-of-order seq",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamBegin(id, "trace", text.size(), 2, 5),
                 makeStreamChunk(id, 1, text.substr(5)),
             };
         }},
        {"duplicate seq",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamBegin(id, "trace", text.size(), 2, 5),
                 makeStreamChunk(id, 0, text.substr(0, 5)),
                 makeStreamChunk(id, 0, text.substr(0, 5)),
             };
         }},
        {"missing seq at end",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamBegin(id, "trace", text.size(), 2, 5),
                 makeStreamChunk(id, 0, text.substr(0, 5)),
                 makeStreamEnd(id, 2, checksum),
             };
         }},
        {"chunk beyond announced count",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamBegin(id, "trace", 5, 1, 5),
                 makeStreamChunk(id, 0, text.substr(0, 5)),
                 makeStreamChunk(id, 1, text.substr(5)),
             };
         }},
        {"checksum mismatch",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamBegin(id, "trace", text.size(), 2, 5),
                 makeStreamChunk(id, 0, text.substr(0, 5)),
                 makeStreamChunk(id, 1, text.substr(5)),
                 makeStreamEnd(id, 2, "0000000000000000"),
             };
         }},
        {"single-frame ok mid-stream",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamBegin(id, "trace", text.size(), 2, 5),
                 makeOkResponse(id, Json::str(text)),
             };
         }},
        {"chunk before begin",
         [&](const Json &id) {
             return std::vector<Json>{
                 makeStreamChunk(id, 0, text),
             };
         }},
        {"malformed stream frame",
         [&](const Json &id) {
             Json bad = makeStreamChunk(id, 0, text);
             bad.set("data", Json::number(3.0));
             return std::vector<Json>{bad};
         }},
    };

    for (const Scenario &scenario : scenarios) {
        SCOPED_TRACE(scenario.name);
        FakeStreamServer fake(scenario.script);
        Client client(fake.port());
        client.setAcceptStream(true);
        expectError("bad_response", [&] {
            client.call("trace", Json::object());
        });
        // Poisoned means CLOSED: no later call may read frames that
        // might belong to the torn stream.
        expectError("io_error",
                    [&] { client.call("ping", Json::object()); });
    }
}

TEST(Stream, MidStreamDisconnectReapsTheServerWriter)
{
    auto ctx = computeContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    // A raw client that requests the stream, reads only the begin
    // frame, and vanishes. The server's writer must notice and abort
    // the stream instead of pumping a megabyte into a dead socket.
    {
        Client raw(server.port());
        Json request = Json::object();
        request.set("id", Json::number(1));
        request.set("verb", Json::str("trace"));
        request.set("params", bigTraceParams());
        request.set("accept_stream", Json::boolean(true));
        ASSERT_TRUE(writeFrame(raw.nativeHandle(), request.dump()));
        std::string payload;
        ASSERT_EQ(readFrame(raw.nativeHandle(), payload, kDefaultMaxFrameBytes),
                  FrameStatus::Ok);
        EXPECT_EQ(streamFrameKind(Json::parse(payload)),
                  StreamFrameKind::Begin);
    } // ~Client closes the socket mid-stream

    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.serverCounters().stream_aborts == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server.serverCounters().stream_aborts, 1u)
        << "the writer was not reaped within 10 s";

    server.beginShutdown();
    server.wait();
}

TEST(Stream, MidStreamCutIsOneIoErrorAndOneRetryRestoresTheBytes)
{
    uint64_t seed = 17;
    if (const char *env = std::getenv("VNOISE_FAULT_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    auto ctx = computeContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    // Sever the response of request 0 after 300000 cumulative wire
    // bytes — past the begin frame and the first 256 KiB chunk, deep
    // inside the stream.
    const size_t kCutBytes = 300000;

    // A plain client sees exactly ONE io_error — never a torn or
    // partial result.
    {
        FaultProxy proxy(server.port(),
                         FaultSchedule().cutMidFrame(0, kCutBytes));
        proxy.start();
        Client plain(proxy.port());
        plain.setAcceptStream(true);
        expectError("io_error", [&] {
            plain.call("trace", bigTraceParams());
        });
        EXPECT_EQ(proxy.counters().injected_cuts, 1u);
        EXPECT_GT(proxy.counters().relayed_stream_frames, 0u)
            << "the cut must land mid-stream, not before it";
        proxy.stop();
    }

    // A resilient client absorbs the same cut with one retry and
    // reassembles the exact campaign bytes — under whatever seed
    // check.sh replays this with.
    {
        FaultProxy proxy(server.port(),
                         FaultSchedule().cutMidFrame(0, kCutBytes));
        proxy.start();
        ResilientClientConfig rconfig;
        rconfig.port = proxy.port();
        rconfig.retry.max_attempts = 4;
        rconfig.retry.backoff_base_ms = 0.5;
        rconfig.retry.backoff_cap_ms = 5.0;
        rconfig.retry.backoff_seed = seed;
        ResilientClient resilient(rconfig);
        resilient.setAcceptStream(true);

        Json result = resilient.call("trace", bigTraceParams());
        EXPECT_EQ(result.dump(), bigTraceReferenceDump())
            << "retried reassembly diverged under seed " << seed;

        ResilienceCounters rc = resilient.counters();
        EXPECT_EQ(rc.retries, 1u)
            << "one cut must cost exactly one retry";
        EXPECT_EQ(rc.failures, 0u);
        EXPECT_EQ(proxy.counters().injected_cuts, 1u);
        proxy.stop();
    }

    server.beginShutdown();
    server.wait();
}

// ---------------------------------------------------------------------
// StreamRelay: the sink mode the router builds on.

TEST(StreamRelay, SinkSeesFramesInWireOrderAndReturnsNull)
{
    auto ctx = computeContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    struct RecordingSink : StreamSink
    {
        std::vector<StreamFrameKind> kinds;
        std::vector<size_t> seqs;
        size_t bytes = 0;
        bool onStreamFrame(const Json &frame,
                           StreamFrameKind kind) override
        {
            kinds.push_back(kind);
            if (kind == StreamFrameKind::Chunk) {
                seqs.push_back(static_cast<size_t>(
                    frame.at("seq").asNumber()));
                bytes += frame.at("data").asString().size();
            }
            return true;
        }
    };

    RecordingSink sink;
    Client client(server.port());
    Json returned = client.call("trace", bigTraceParams(), &sink);
    EXPECT_TRUE(returned.isNull())
        << "relay mode must not buffer a result";

    size_t chunks = streamChunkCount(bigTraceReferenceDump().size(),
                                     config.stream_chunk_bytes);
    ASSERT_EQ(sink.kinds.size(), chunks + 2);
    EXPECT_EQ(sink.kinds.front(), StreamFrameKind::Begin);
    EXPECT_EQ(sink.kinds.back(), StreamFrameKind::End);
    for (size_t i = 0; i < sink.seqs.size(); ++i)
        EXPECT_EQ(sink.seqs[i], i);
    EXPECT_EQ(sink.bytes, bigTraceReferenceDump().size());

    // A sink that gives up mid-relay aborts the call with the
    // non-retryable `aborted` and poisons the connection.
    struct QuittingSink : StreamSink
    {
        int seen = 0;
        bool onStreamFrame(const Json &, StreamFrameKind) override
        {
            return ++seen < 2;
        }
    };
    QuittingSink quitter;
    Client quitting(server.port());
    expectError("aborted", [&] {
        quitting.call("trace", bigTraceParams(), &quitter);
    });
    EXPECT_FALSE(retryableCode("aborted"))
        << "a dead downstream must not trigger upstream retries";
    expectError("io_error",
                [&] { quitting.call("ping", Json::object()); });

    server.beginShutdown();
    server.wait();
}

} // namespace
