/**
 * @file
 * Tests of the resilient client layer and the faultnet harness that
 * proves it:
 *
 *  - Resilient.*: backoff determinism (fixed seed => bit-identical
 *    delay sequence), the breaker state machine under an injectable
 *    clock, the deadline budget never exceeding its cap, the pool
 *    bound holding under 16 concurrent callers, and the Client
 *    hardening regressions (failed connect leaves the object
 *    reusable; large frames survive a tiny send buffer).
 *  - Faultnet.*: schedule parse/dump round-trips, seeded schedules
 *    replaying identically, and ping-level proxy runs where a cut
 *    frame, an injected overload, and a refused connection are each
 *    absorbed by one retry.
 *  - FaultnetDeterminism.*: the live replay property — same seed,
 *    same workload, same observed backoff delays, bit for bit
 *    (scripts/check.sh runs this with two different seeds).
 *  - FaultnetE2E.*: the acceptance run — 8 concurrent clients under a
 *    schedule with a mid-frame cut and an overloaded burst return
 *    byte-identical results to the fault-free run with zero
 *    caller-visible errors; the same schedule with retries disabled
 *    fails visibly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/faultnet.hh"
#include "service/resilient.hh"
#include "service/server.hh"

namespace
{

using namespace vn;
using namespace vn::service;

/** Context with no kit: control-verb and fault-hook tests never
 *  reach a computation. */
vn::AnalysisContext
bareContext()
{
    vn::AnalysisContext ctx;
    ctx.campaign.cache_dir.clear();
    return ctx;
}

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Reduced-cost kit (same recipe as test_service.cc). */
const vn::StressmarkKit &
kit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 300;
        params.search.ipc_filter_keep = 32;
        params.search.ipc_eval_instrs = 200;
        params.search.power_eval_instrs = 800;
        vn::StressmarkKit built(core(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

vn::AnalysisContext
computeContext()
{
    vn::AnalysisContext ctx;
    ctx.kit = &kit();
    ctx.window = 6e-6;
    ctx.unsync_draws = 2;
    ctx.consecutive_events = 200;
    ctx.campaign.cache_dir.clear();
    return ctx;
}

/** A loopback port that nothing listens on. */
int
deadPort()
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    int port = ntohs(addr.sin_port);
    ::close(fd); // bound but never listened: connects are refused
    return port;
}

// ---------------------------------------------------------------------
// Resilient: policy pieces in isolation.

TEST(Resilient, RetryableCodeClassification)
{
    EXPECT_TRUE(retryableCode("io_error"));
    EXPECT_TRUE(retryableCode("overloaded"));
    EXPECT_TRUE(retryableCode("shutting_down"));
    EXPECT_FALSE(retryableCode("bad_request"));
    EXPECT_FALSE(retryableCode("unknown_verb"));
    EXPECT_FALSE(retryableCode("deadline_exceeded"));
    EXPECT_FALSE(retryableCode("internal"));
    EXPECT_FALSE(retryableCode("circuit_open"));
}

TEST(Resilient, BackoffIsBitIdenticalForAFixedSeed)
{
    RetryPolicy policy;
    policy.backoff_base_ms = 10.0;
    policy.backoff_cap_ms = 500.0;
    policy.backoff_seed = 42;

    Backoff a(policy), b(policy);
    for (int i = 0; i < 64; ++i) {
        double da = a.nextDelayMs();
        double db = b.nextDelayMs();
        EXPECT_EQ(da, db) << "delay " << i
                          << " diverged for the same seed";
        EXPECT_GE(da, policy.backoff_base_ms);
        EXPECT_LE(da, policy.backoff_cap_ms);
    }

    // A different seed produces a different sequence.
    policy.backoff_seed = 43;
    Backoff c(policy);
    Backoff fresh(RetryPolicy{4, 10.0, 500.0, 42, 10000.0, 0.0});
    bool any_different = false;
    for (int i = 0; i < 16; ++i)
        any_different |= c.nextDelayMs() != fresh.nextDelayMs();
    EXPECT_TRUE(any_different);

    // The server's retry_after_ms hint is a floor.
    Backoff floored(policy);
    EXPECT_GE(floored.nextDelayMs(900.0), 900.0);
}

TEST(Resilient, BreakerStateMachineUnderInjectableClock)
{
    BreakerConfig config;
    config.failure_threshold = 3;
    config.open_ms = 1000.0;
    CircuitBreaker breaker(config);

    auto fake_now = CircuitBreaker::Clock::now();
    breaker.setClockForTest([&] { return fake_now; });

    // Closed: failures below the threshold change nothing visible.
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_TRUE(breaker.allow());
    breaker.onFailure();
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_TRUE(breaker.allow());

    // A success resets the consecutive count.
    breaker.onSuccess();
    breaker.onFailure();
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);

    // The third consecutive failure opens the circuit.
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 1u);
    EXPECT_FALSE(breaker.allow());

    // Still open just before the cooldown elapses.
    fake_now += std::chrono::milliseconds(999);
    EXPECT_FALSE(breaker.allow());

    // Cooldown over: exactly ONE half-open probe is admitted.
    fake_now += std::chrono::milliseconds(2);
    EXPECT_TRUE(breaker.allow());
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    EXPECT_FALSE(breaker.allow()) << "second probe while one is out";

    // Failed probe: straight back to open, cooldown restarts.
    breaker.onFailure();
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 2u);
    EXPECT_FALSE(breaker.allow());

    // An abandoned probe (the attempt never ran: budget exhausted,
    // pool wait timed out) releases the slot back to Open — neither a
    // success nor a failure — and the next allow() admits a fresh
    // probe instead of waiting forever on one that never reported.
    fake_now += std::chrono::milliseconds(1001);
    EXPECT_TRUE(breaker.allow());
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    breaker.onAbandoned();
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.opens(), 2u) << "an abandoned probe is not a"
                                      " transition into Open";
    EXPECT_TRUE(breaker.allow()) << "released slot admits a new probe";
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);

    // onAbandoned while Closed is a no-op (no reset, no failure).
    // Successful probe closes the circuit fully.
    breaker.onSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    breaker.onAbandoned();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_TRUE(breaker.allow());
    EXPECT_EQ(breaker.opens(), 2u);

    EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen), "half_open");
}

// ---------------------------------------------------------------------
// Resilient: the client against a live server.

TEST(Resilient, DeadlineBudgetIsNeverExceeded)
{
    // Every compute submit is rejected `overloaded` by the admission
    // hook, so the client retries until its wall-clock budget is gone
    // (fake clock + fake sleep: no real waiting).
    auto ctx = bareContext();
    ScriptedFaultHook hook(FaultSchedule().overloaded(0, 100000, 5.0));
    ServerConfig config;
    config.port = 0;
    config.dispatcher.fault = &hook;
    Server server(ctx, config);
    server.start();

    ResilientClientConfig rconfig;
    rconfig.port = server.port();
    rconfig.retry.max_attempts = 50;
    rconfig.retry.backoff_base_ms = 20.0;
    rconfig.retry.call_deadline_ms = 100.0;
    ResilientClient client(rconfig);

    auto fake_now = ResilientClient::Clock::now();
    client.setClockForTest([&] { return fake_now; });
    double slept_ms = 0.0;
    client.setSleepForTest([&](double ms) {
        slept_ms += ms;
        fake_now += std::chrono::duration_cast<
            ResilientClient::Clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    });
    std::vector<double> attempt_deadlines;
    client.setAttemptObserverForTest([&](int, double deadline_ms) {
        attempt_deadlines.push_back(deadline_ms);
    });

    try {
        client.call("sweep", [] {
            Json params = Json::object();
            params.set("freq_hz", Json::number(2.4e6));
            return params;
        }());
        FAIL() << "the hook rejects every attempt";
    } catch (const ServiceError &e) {
        // The wall-clock budget — not the attempt count — ended the
        // call, and the code says so; the last wire error is detail.
        EXPECT_EQ(e.code(), "deadline_exceeded");
        EXPECT_NE(std::string(e.what()).find("overloaded"),
                  std::string::npos);
    }

    // The budget bounds everything: total sleep, every per-attempt
    // deadline, and the deadlines shrink as the budget burns down.
    EXPECT_LE(slept_ms, 100.0 + 1e-6); // delays are clamped to the budget
    ASSERT_GE(attempt_deadlines.size(), 2u);
    for (size_t i = 0; i < attempt_deadlines.size(); ++i) {
        EXPECT_GT(attempt_deadlines[i], 0.0);
        EXPECT_LE(attempt_deadlines[i], 100.0);
        if (i > 0) {
            EXPECT_LT(attempt_deadlines[i], attempt_deadlines[i - 1]);
        }
    }
    // Far fewer than max_attempts fit inside the budget.
    ResilienceCounters counters = client.counters();
    EXPECT_LT(counters.attempts, 50u);
    EXPECT_EQ(counters.retries, counters.attempts - 1);
    EXPECT_EQ(counters.failures, 1u);
    EXPECT_GT(hook.injected(), 0u);

    server.beginShutdown();
    server.wait();
}

TEST(Resilient, BreakerOpensAfterConsecutiveTransportFailures)
{
    ResilientClientConfig rconfig;
    rconfig.port = deadPort();
    rconfig.retry.max_attempts = 5;
    rconfig.retry.backoff_base_ms = 0.1;
    rconfig.retry.backoff_cap_ms = 0.5;
    rconfig.breaker.failure_threshold = 2;
    rconfig.breaker.open_ms = 60000.0;
    ResilientClient client(rconfig);

    // Two failed dials open the circuit; the third attempt is refused
    // without touching a socket.
    try {
        client.call("ping", Json::object());
        FAIL() << "nothing listens on the port";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), "circuit_open");
    }
    EXPECT_EQ(client.breakerState(), BreakerState::Open);
    ResilienceCounters counters = client.counters();
    EXPECT_EQ(counters.attempts, 2u);
    EXPECT_EQ(counters.breaker_opens, 1u);
    EXPECT_EQ(counters.breaker_rejects, 1u);

    // While open, calls fail fast — no new attempts.
    EXPECT_THROW(client.ping(), ServiceError);
    EXPECT_EQ(client.counters().attempts, 2u);
}

TEST(Resilient, BudgetExhaustionNeverLeaksAHalfOpenProbe)
{
    // Regression: the backoff sleep is capped to exactly the remaining
    // budget, so the next iteration finds the budget exhausted right
    // away. That exit must happen BEFORE the breaker admits a
    // half-open probe — a probe admitted and then abandoned would wedge
    // the breaker into rejecting every future call as circuit_open.
    ResilientClientConfig rconfig;
    rconfig.port = deadPort();
    rconfig.retry.max_attempts = 3;
    rconfig.retry.backoff_base_ms = 200.0;
    rconfig.retry.backoff_cap_ms = 200.0; // delay is exactly 200
    rconfig.retry.call_deadline_ms = 100.0;
    rconfig.breaker.failure_threshold = 1;
    rconfig.breaker.open_ms = 50.0;
    ResilientClient client(rconfig);

    auto fake_now = ResilientClient::Clock::now();
    client.setClockForTest([&] { return fake_now; });
    client.setSleepForTest([&](double ms) {
        fake_now += std::chrono::duration_cast<
            ResilientClient::Clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    });

    // Call 1: the dial fails (opening the circuit), the 200 ms backoff
    // is clamped to the 100 ms budget, and the second iteration exits
    // on the wall clock — reported as deadline_exceeded (the budget
    // was the cause), with the wire error as detail.
    try {
        client.ping();
        FAIL() << "nothing listens on the port";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), "deadline_exceeded");
        EXPECT_NE(std::string(e.what()).find("io_error"),
                  std::string::npos);
    }
    EXPECT_EQ(client.breakerState(), BreakerState::Open);
    uint64_t attempts_after_first = client.counters().attempts;
    EXPECT_EQ(attempts_after_first, 1u);

    // The cooldown elapses. The next call must get a real half-open
    // probe (which fails on the wire again) — not an eternal
    // circuit_open from a probe slot leaked by the budget exit above.
    fake_now += std::chrono::milliseconds(60);
    try {
        client.ping();
        FAIL() << "nothing listens on the port";
    } catch (const ServiceError &e) {
        EXPECT_NE(e.code(), "circuit_open")
            << "breaker wedged by a leaked half-open probe";
        EXPECT_EQ(e.code(), "deadline_exceeded");
    }
    EXPECT_GT(client.counters().attempts, attempts_after_first)
        << "the probe attempt must actually touch the socket";
}

TEST(Resilient, PoolNeverExceedsBoundUnder16ConcurrentCallers)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    ResilientClientConfig rconfig;
    rconfig.port = server.port();
    rconfig.pool_size = 4;
    ResilientClient client(rconfig);

    std::atomic<int> failures{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 16; ++c) {
        callers.emplace_back([&] {
            for (int i = 0; i < 20; ++i) {
                try {
                    if (client.ping() != kProtocolVersion)
                        ++failures;
                } catch (const ServiceError &) {
                    ++failures;
                }
            }
        });
    }
    for (auto &t : callers)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    ResilienceCounters counters = client.counters();
    EXPECT_EQ(counters.calls, 320u);
    EXPECT_LE(counters.pool_peak_in_use, 4u);
    EXPECT_LE(counters.dials, 4u) << "the bound caps dials too";
    EXPECT_EQ(counters.pool_in_use, 0u);
    EXPECT_LE(counters.pool_idle, 4u);
    EXPECT_GT(counters.reused, 0u);

    server.beginShutdown();
    server.wait();
}

TEST(Resilient, IdleConnectionsAreReapedAfterTheTtl)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    ResilientClientConfig rconfig;
    rconfig.port = server.port();
    rconfig.idle_ttl_ms = 1000.0;
    ResilientClient client(rconfig);
    auto fake_now = ResilientClient::Clock::now();
    client.setClockForTest([&] { return fake_now; });

    EXPECT_EQ(client.ping(), kProtocolVersion);
    EXPECT_EQ(client.counters().pool_idle, 1u);

    fake_now += std::chrono::milliseconds(999);
    EXPECT_EQ(client.reapIdle(), 0u) << "TTL not reached yet";
    fake_now += std::chrono::milliseconds(2);
    EXPECT_EQ(client.reapIdle(), 1u);
    ResilienceCounters counters = client.counters();
    EXPECT_EQ(counters.reaped, 1u);
    EXPECT_EQ(counters.pool_idle, 0u);

    // The pool redials transparently afterwards.
    EXPECT_EQ(client.ping(), kProtocolVersion);
    EXPECT_EQ(client.counters().dials, 2u);

    server.beginShutdown();
    server.wait();
}

// ---------------------------------------------------------------------
// Client hardening regressions (satellite bugfix).

TEST(Resilient, FailedConnectLeavesTheClientReusable)
{
    int dead = deadPort();

    // A fresh client survives a failed connect and can dial again.
    Client client;
    EXPECT_THROW(client.connect(dead), ServiceError);
    EXPECT_FALSE(client.connected());

    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();
    client.connect(server.port());
    EXPECT_TRUE(client.connected());
    EXPECT_EQ(client.ping(), kProtocolVersion);

    // An ALREADY-CONNECTED client keeps its live connection when a
    // re-connect attempt fails (the old socket is only replaced after
    // the new dial succeeds).
    EXPECT_THROW(client.connect(dead), ServiceError);
    EXPECT_TRUE(client.connected());
    EXPECT_EQ(client.ping(), kProtocolVersion);

    server.beginShutdown();
    server.wait();
}

TEST(Resilient, LargeFramesSurviveATinySendBuffer)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    Client client(server.port());
    // Force partial write(2)s on the request path.
    int small = 4096;
    ::setsockopt(client.nativeHandle(), SOL_SOCKET, SO_SNDBUF, &small,
                 sizeof(small));

    Json params = Json::object();
    params.set("pad", Json::str(std::string(300000, 'x')));
    Json result = client.call("ping", std::move(params));
    EXPECT_TRUE(result.at("pong").asBool());

    server.beginShutdown();
    server.wait();
}

// ---------------------------------------------------------------------
// Faultnet: schedules.

TEST(Faultnet, ScheduleParseDumpRoundTrip)
{
    FaultSchedule schedule;
    schedule.refuseConnection(0)
        .refuseConnection(4)
        .cutMidFrame(2, 9)
        .truncate(5, 3)
        .delayMs(7, 12.5)
        .overloaded(10, 3, 7.25);

    FaultSchedule reparsed = FaultSchedule::parse(schedule.dump());
    EXPECT_TRUE(reparsed == schedule);
    EXPECT_EQ(reparsed.dump(), schedule.dump());

    EXPECT_TRUE(schedule.connectionRefused(0));
    EXPECT_FALSE(schedule.connectionRefused(1));
    EXPECT_EQ(schedule.actionFor(2).kind,
              FaultAction::Kind::CutMidFrame);
    EXPECT_EQ(schedule.actionFor(2).bytes, 9u);
    EXPECT_EQ(schedule.actionFor(11).kind,
              FaultAction::Kind::Overloaded);
    EXPECT_EQ(schedule.actionFor(11).retry_after_ms, 7.25);
    EXPECT_EQ(schedule.actionFor(3).kind, FaultAction::Kind::None);

    // COUNT and RETRY_AFTER_MS are optional: the documented short
    // forms keep their defaults (1 and 0) instead of being zeroed by
    // a failed extraction.
    FaultSchedule shorthand = FaultSchedule::parse(
        "overloaded 5\noverloaded 8 2\noverloaded 12 1 3.5\n");
    EXPECT_EQ(shorthand.actionFor(5).kind,
              FaultAction::Kind::Overloaded);
    EXPECT_EQ(shorthand.actionFor(5).retry_after_ms, 0.0);
    EXPECT_EQ(shorthand.actionFor(6).kind, FaultAction::Kind::None);
    EXPECT_EQ(shorthand.actionFor(8).kind,
              FaultAction::Kind::Overloaded);
    EXPECT_EQ(shorthand.actionFor(9).kind,
              FaultAction::Kind::Overloaded);
    EXPECT_EQ(shorthand.actionFor(12).retry_after_ms, 3.5);

    // Comments and blank lines are tolerated; junk is not.
    FaultSchedule commented = FaultSchedule::parse(
        "# a comment\n\ncut 1 4\n");
    EXPECT_EQ(commented.actionFor(1).kind,
              FaultAction::Kind::CutMidFrame);
    EXPECT_THROW(FaultSchedule::parse("frobnicate 1 2\n"),
                 std::runtime_error);
    EXPECT_THROW(FaultSchedule::parse("cut 1\n"), std::runtime_error);
    EXPECT_THROW(FaultSchedule::parse("cut 1 2 3\n"),
                 std::runtime_error);
    EXPECT_THROW(FaultSchedule::parse("overloaded 1 junk\n"),
                 std::runtime_error);
    EXPECT_THROW(FaultSchedule::parse("overloaded 1 0\n"),
                 std::runtime_error);
}

TEST(Faultnet, RandomSchedulesAreAPureFunctionOfTheSeed)
{
    FaultSchedule a = FaultSchedule::random(17, 100, 8);
    FaultSchedule b = FaultSchedule::random(17, 100, 8);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.dump(), b.dump());
    EXPECT_EQ(a.actionCount(), 8u);

    FaultSchedule other = FaultSchedule::random(42, 100, 8);
    EXPECT_NE(a.dump(), other.dump());

    // Round-trips through the text form like any hand-written one.
    EXPECT_TRUE(FaultSchedule::parse(a.dump()) == a);
}

// ---------------------------------------------------------------------
// Faultnet: the proxy, at ping level (no kit).

TEST(Faultnet, MidFrameCutIsAbsorbedByOneRetry)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    // The response of request 0 is cut 2 bytes into its HEADER.
    FaultProxy proxy(server.port(), FaultSchedule().cutMidFrame(0, 2));
    proxy.start();

    ResilientClientConfig rconfig;
    rconfig.port = proxy.port();
    rconfig.retry.backoff_base_ms = 0.1;
    rconfig.retry.backoff_cap_ms = 1.0;
    ResilientClient client(rconfig);

    EXPECT_EQ(client.ping(), kProtocolVersion);
    ResilienceCounters counters = client.counters();
    EXPECT_EQ(counters.retries, 1u);
    EXPECT_EQ(counters.dials, 2u) << "the torn connection is redialed";
    EXPECT_GE(counters.discarded, 1u);
    EXPECT_EQ(counters.failures, 0u);
    EXPECT_EQ(proxy.counters().injected_cuts, 1u);

    proxy.stop();
    server.beginShutdown();
    server.wait();
}

TEST(Faultnet, TruncatedPayloadIsAbsorbedByOneRetry)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    // Header promises the full payload; only 5 bytes arrive.
    FaultProxy proxy(server.port(), FaultSchedule().truncate(0, 5));
    proxy.start();

    ResilientClientConfig rconfig;
    rconfig.port = proxy.port();
    rconfig.retry.backoff_base_ms = 0.1;
    rconfig.retry.backoff_cap_ms = 1.0;
    ResilientClient client(rconfig);

    EXPECT_EQ(client.ping(), kProtocolVersion);
    EXPECT_EQ(client.counters().retries, 1u);
    EXPECT_EQ(proxy.counters().injected_truncations, 1u);

    proxy.stop();
    server.beginShutdown();
    server.wait();
}

TEST(Faultnet, InjectedOverloadHonorsRetryAfter)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    FaultProxy proxy(server.port(),
                     FaultSchedule().overloaded(0, 1, 25.0));
    proxy.start();

    ResilientClientConfig rconfig;
    rconfig.port = proxy.port();
    rconfig.retry.backoff_base_ms = 0.1;
    rconfig.retry.backoff_cap_ms = 1.0;
    ResilientClient client(rconfig);
    std::vector<double> delays;
    client.setSleepForTest([&](double ms) { delays.push_back(ms); });

    EXPECT_EQ(client.ping(), kProtocolVersion);
    ASSERT_EQ(delays.size(), 1u);
    EXPECT_GE(delays[0], 25.0) << "retry_after_ms floors the backoff";
    EXPECT_EQ(proxy.counters().injected_overloaded, 1u);
    // A structured response keeps the breaker closed: the endpoint
    // is alive, it is just shedding load.
    EXPECT_EQ(client.breakerState(), BreakerState::Closed);

    proxy.stop();
    server.beginShutdown();
    server.wait();
}

TEST(Faultnet, RefusedConnectionIsAbsorbedByOneRetry)
{
    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    FaultProxy proxy(server.port(), FaultSchedule().refuseConnection(0));
    proxy.start();

    ResilientClientConfig rconfig;
    rconfig.port = proxy.port();
    rconfig.retry.backoff_base_ms = 0.1;
    rconfig.retry.backoff_cap_ms = 1.0;
    ResilientClient client(rconfig);

    EXPECT_EQ(client.ping(), kProtocolVersion);
    ResilienceCounters counters = client.counters();
    EXPECT_EQ(counters.retries, 1u);
    EXPECT_EQ(counters.failures, 0u);
    EXPECT_EQ(proxy.counters().refused, 1u);

    proxy.stop();
    server.beginShutdown();
    server.wait();
}

// ---------------------------------------------------------------------
// Determinism under a seeded schedule (check.sh runs this suite with
// two different VNOISE_FAULT_SEED values).

TEST(FaultnetDeterminism, SeededRunsReplayBitIdentically)
{
    uint64_t seed = 17;
    if (const char *env = std::getenv("VNOISE_FAULT_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    // Schedule derivation is a pure function of the seed...
    FaultSchedule schedule = FaultSchedule::random(seed, 8, 3);
    ASSERT_TRUE(FaultSchedule::random(seed, 8, 3) == schedule);
    // ...with one guaranteed retryable injection so the replay below
    // always exercises the backoff path.
    schedule.overloaded(0, 1, 5.0);

    auto ctx = bareContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    // Run the same single-threaded ping workload twice behind the same
    // schedule: the observed backoff delays (PRNG draws floored by
    // injected retry hints) must match bit for bit.
    auto run = [&] {
        FaultProxy proxy(server.port(), schedule);
        proxy.start();
        ResilientClientConfig rconfig;
        rconfig.port = proxy.port();
        rconfig.retry.backoff_seed = seed;
        rconfig.retry.max_attempts = 6;
        ResilientClient client(rconfig);
        std::vector<double> delays;
        client.setSleepForTest(
            [&](double ms) { delays.push_back(ms); });
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(client.ping(), kProtocolVersion);
        EXPECT_EQ(client.counters().failures, 0u);
        proxy.stop();
        return delays;
    };

    std::vector<double> first = run();
    std::vector<double> second = run();
    EXPECT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i], second[i]) << "delay " << i;

    server.beginShutdown();
    server.wait();
}

// ---------------------------------------------------------------------
// Acceptance: 8 concurrent clients under carnage == fault-free run.

TEST(FaultnetE2E, FaultedRunMatchesFaultFreeRunByteForByte)
{
    auto ctx = computeContext();
    ServerConfig config;
    config.port = 0;
    Server server(ctx, config);
    server.start();

    const int kClients = 8;
    std::vector<SweepRequest> requests;
    for (int c = 0; c < kClients; ++c)
        requests.push_back(SweepRequest{{1.0e6 + 2e5 * c, true}});

    // One worker thread per request through a shared pooled client;
    // results come back as canonical 17-digit JSON dumps so equality
    // is byte equality.
    auto runAll = [&](int port, const RetryPolicy &retry,
                      ResilienceCounters *counters_out) {
        ResilientClientConfig rconfig;
        rconfig.port = port;
        rconfig.pool_size = kClients;
        rconfig.retry = retry;
        ResilientClient client(rconfig);
        std::vector<std::string> dumps(
            static_cast<size_t>(kClients));
        std::atomic<int> errors{0};
        std::vector<std::thread> threads;
        for (int c = 0; c < kClients; ++c) {
            threads.emplace_back([&, c] {
                try {
                    FreqSweepPoint point = client.sweep(
                        requests[static_cast<size_t>(c)]);
                    dumps[static_cast<size_t>(c)] =
                        encodeResult(point).dump();
                } catch (const ServiceError &) {
                    ++errors;
                }
            });
        }
        for (auto &t : threads)
            t.join();
        if (counters_out)
            *counters_out = client.counters();
        return std::make_pair(dumps, errors.load());
    };

    RetryPolicy with_retries;
    with_retries.max_attempts = 6;
    with_retries.backoff_base_ms = 1.0;
    with_retries.backoff_cap_ms = 20.0;
    with_retries.call_deadline_ms = 120000.0;

    // Baseline: straight at the server, no faults.
    auto [baseline, baseline_errors] =
        runAll(server.port(), with_retries, nullptr);
    ASSERT_EQ(baseline_errors, 0);

    // The acceptance schedule: a response cut mid-frame plus an
    // overloaded burst. Retries must absorb all of it.
    FaultSchedule schedule;
    schedule.cutMidFrame(1, 9).overloaded(3, 2, 2.0);
    {
        FaultProxy proxy(server.port(), schedule);
        proxy.start();
        ResilienceCounters counters;
        auto [faulted, faulted_errors] =
            runAll(proxy.port(), with_retries, &counters);
        EXPECT_EQ(faulted_errors, 0)
            << "every injected fault must be absorbed";
        EXPECT_GT(counters.retries, 0u);
        for (int c = 0; c < kClients; ++c)
            EXPECT_EQ(faulted[static_cast<size_t>(c)],
                      baseline[static_cast<size_t>(c)])
                << "request " << c
                << " diverged between the faulted and fault-free runs";
        FaultProxyCounters pc = proxy.counters();
        EXPECT_EQ(pc.injected_cuts, 1u);
        EXPECT_EQ(pc.injected_overloaded, 2u);
        proxy.stop();
    }

    // Control experiment: the same schedule with retries disabled
    // fails visibly — the harness is injecting real faults.
    {
        FaultProxy proxy(server.port(), schedule);
        proxy.start();
        RetryPolicy no_retries = with_retries;
        no_retries.max_attempts = 1;
        auto [unprotected, unprotected_errors] =
            runAll(proxy.port(), no_retries, nullptr);
        EXPECT_GT(unprotected_errors, 0)
            << "without retries the schedule must surface errors";
        proxy.stop();
    }

    server.beginShutdown();
    server.wait();
}

} // namespace
