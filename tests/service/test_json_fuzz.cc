/**
 * @file
 * Seeded property tests of the wire JSON codec. Three properties the
 * protocol depends on:
 *
 *  1. Every finite IEEE double survives dump() -> parse() with the
 *     exact same bit pattern (%.17g round-trip) — the service promises
 *     bit-identical results over the wire.
 *  2. parse() on arbitrary mutated bytes either succeeds or throws
 *     JsonError; it never crashes, corrupts memory, or throws anything
 *     else. (The daemon feeds attacker-controlled frames into it.)
 *  3. The nesting-depth limit triggers exactly at the documented
 *     boundary: kMaxDepth levels parse, kMaxDepth + 1 throw.
 *
 * Everything draws from vn::Rng with fixed seeds, so a failure
 * reproduces deterministically on every platform.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <limits>
#include <string>

#include "service/json.hh"
#include "util/rng.hh"

namespace
{

using vn::Rng;
using vn::service::Json;
using vn::service::JsonError;

uint64_t
bitsOf(double v)
{
    return std::bit_cast<uint64_t>(v);
}

TEST(JsonFuzz, RandomDoublesRoundTripBitIdentically)
{
    // Hand-picked hazards first: signed zero, extremes of the normal
    // range, the smallest denormal, classic non-representable
    // fractions, and values the service actually ships.
    const double corners[] = {
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        2.4e6,
        6e-6,
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::epsilon(),
        -std::numeric_limits<double>::max(),
    };
    for (double v : corners) {
        Json parsed = Json::parse(Json::number(v).dump());
        EXPECT_EQ(bitsOf(parsed.asNumber()), bitsOf(v))
            << "corner value " << v;
    }

    // Uniformly random bit patterns cover every exponent, both signs,
    // and the denormal range; non-finite patterns are skipped (JSON
    // has no encoding for them and dump() is never handed one).
    Rng rng(0x5eedf00dull);
    int tested = 0;
    for (int i = 0; i < 20000; ++i) {
        double v = std::bit_cast<double>(rng.next());
        if (!std::isfinite(v))
            continue;
        ++tested;
        Json parsed = Json::parse(Json::number(v).dump());
        EXPECT_EQ(bitsOf(parsed.asNumber()), bitsOf(v))
            << "iteration " << i << ": " << Json::number(v).dump();
    }
    // ~2 in 1024 patterns are Inf/NaN; the sweep must not degenerate.
    EXPECT_GT(tested, 19000);
}

/** A random document of bounded depth, scalars at the leaves. */
Json
randomDocument(Rng &rng, int depth)
{
    uint64_t pick = rng.below(depth >= 5 ? 4 : 6);
    switch (pick) {
    case 0:
        return Json();
    case 1:
        return Json::boolean(rng.below(2) == 0);
    case 2: {
        double v = std::bit_cast<double>(rng.next());
        return Json::number(std::isfinite(v) ? v : rng.uniform());
    }
    case 3: {
        // Printable bytes plus the characters dump() must escape.
        static const char alphabet[] =
            "abcXYZ 0123456789\"\\\n\t/{}[]:,";
        std::string s;
        for (uint64_t i = rng.below(12); i > 0; --i)
            s += alphabet[rng.below(sizeof(alphabet) - 1)];
        return Json::str(std::move(s));
    }
    case 4: {
        Json arr = Json::array();
        for (uint64_t i = rng.below(4); i > 0; --i)
            arr.push(randomDocument(rng, depth + 1));
        return arr;
    }
    default: {
        Json obj = Json::object();
        for (uint64_t i = rng.below(4); i > 0; --i)
            obj.set("k" + std::to_string(i),
                    randomDocument(rng, depth + 1));
        return obj;
    }
    }
}

TEST(JsonFuzz, RandomDocumentsRoundTripThroughDump)
{
    Rng rng(0xd0c5eedull);
    for (int i = 0; i < 500; ++i) {
        Json doc = randomDocument(rng, 0);
        std::string once = doc.dump();
        std::string twice = Json::parse(once).dump();
        EXPECT_EQ(once, twice) << "iteration " << i;
    }
}

TEST(JsonFuzz, RandomMutationsNeverCrash)
{
    // Seeds shaped like real traffic: a request envelope, a stats-ish
    // reply, deep nesting near the limit, and escape-heavy strings.
    const std::string seeds[] = {
        "{\"id\":7,\"verb\":\"sweep\",\"params\":{\"freq_hz\":2.4e6,"
        "\"synchronized\":true},\"deadline_ms\":2000}",
        "{\"ok\":true,\"result\":{\"p2p\":[0.01,0.02,0.03],"
        "\"v_min\":[-0.5,1e308,5e-324],\"failed\":false}}",
        "[[[[[[[[[[{\"a\":[null,true,\"x\"]}]]]]]]]]]]",
        "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0041d\",\"t\":\"\"}",
    };

    Rng rng(0xf0220b17e5ull);
    int parsed_ok = 0, rejected = 0;
    for (int i = 0; i < 8000; ++i) {
        std::string bytes = seeds[rng.below(std::size(seeds))];
        for (uint64_t m = 1 + rng.below(8); m > 0 && !bytes.empty();
             --m) {
            size_t at = rng.below(bytes.size());
            switch (rng.below(4)) {
            case 0: // flip to an arbitrary byte (NULs included)
                bytes[at] = static_cast<char>(rng.below(256));
                break;
            case 1: // delete
                bytes.erase(at, 1);
                break;
            case 2: // duplicate-insert
                bytes.insert(at, 1, bytes[at]);
                break;
            default: // truncate
                bytes.resize(at);
                break;
            }
        }
        try {
            Json value = Json::parse(bytes);
            (void)value.dump(); // the parsed value must be usable
            ++parsed_ok;
        } catch (const JsonError &) {
            ++rejected; // the one and only acceptable failure mode
        }
    }
    // The mutator must actually exercise both outcomes.
    EXPECT_GT(rejected, 0);
    EXPECT_GT(parsed_ok + rejected, 7999);
}

/** `depth` nested arrays, the innermost empty: depth == container
 *  nesting level of the document (a leaf would add one more). */
std::string
nestedArrays(int depth)
{
    return std::string(static_cast<size_t>(depth), '[') +
           std::string(static_cast<size_t>(depth), ']');
}

std::string
nestedObjects(int depth)
{
    std::string text;
    for (int i = 1; i < depth; ++i)
        text += "{\"k\":";
    text += "{}";
    text += std::string(static_cast<size_t>(depth) - 1, '}');
    return text;
}

TEST(JsonFuzz, DepthLimitEnforcedExactlyAtBoundary)
{
    // kMaxDepth levels are legal...
    Json deep_arrays = Json::parse(nestedArrays(Json::kMaxDepth));
    EXPECT_TRUE(deep_arrays.isArray());
    Json deep_objects = Json::parse(nestedObjects(Json::kMaxDepth));
    EXPECT_TRUE(deep_objects.isObject());
    // ...and what parse() accepted, dump() reproduces.
    EXPECT_EQ(Json::parse(deep_arrays.dump()).dump(),
              deep_arrays.dump());

    // ...one more is not, whatever the container type.
    EXPECT_THROW(Json::parse(nestedArrays(Json::kMaxDepth + 1)),
                 JsonError);
    EXPECT_THROW(Json::parse(nestedObjects(Json::kMaxDepth + 1)),
                 JsonError);
    try {
        Json::parse(nestedArrays(Json::kMaxDepth + 1));
        FAIL() << "depth " << Json::kMaxDepth + 1 << " must throw";
    } catch (const JsonError &e) {
        EXPECT_STREQ(e.what(), "nesting too deep");
    }

    // Far past the limit must still be a clean throw, not a stack
    // overflow — this is the hostile-payload case the limit exists for.
    EXPECT_THROW(Json::parse(nestedArrays(100000)), JsonError);
}

} // namespace
