/**
 * @file
 * Conformance tests of priority admission:
 *
 *  - Wfq.*: the weighted fair queue in isolation (it is clock-free,
 *    so every property here is exact, not statistical) — the 4:1
 *    weighted share, the starvation-age promotion bound, and the
 *    depth/counter accounting.
 *  - Admission.*: the dispatcher's use of it — verb/cache-state tier
 *    classification, the per-tier `retry_after_ms` backpressure hints
 *    (an interactive reject must not inherit the batch queue's drain
 *    horizon), and a fake-clock run proving a lone batch request
 *    behind an interactive flood is served within the promotion age.
 *  - AdmissionQoS.*: the server-level guarantee — with the batch
 *    queue saturated, interactive pings stay fast (the /metrics
 *    interactive-wait histogram bounds their p99) and the framed
 *    `stats` admission section agrees exactly with the Prometheus
 *    `vnoised_admission_*` series.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "analysis/serving.hh"
#include "service/admission.hh"
#include "service/client.hh"
#include "service/dispatcher.hh"
#include "service/http.hh"
#include "service/server.hh"

namespace
{

using namespace vn;
using namespace vn::service;

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Reduced-cost kit (same recipe as test_service.cc). */
const vn::StressmarkKit &
kit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 300;
        params.search.ipc_filter_keep = 32;
        params.search.ipc_eval_instrs = 200;
        params.search.power_eval_instrs = 800;
        vn::StressmarkKit built(core(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

std::string
scratchDir(const std::string &leaf)
{
    std::string dir = ::testing::TempDir() + "vnoise_admission_" +
                      std::to_string(::getpid()) + "_" + leaf;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

/** Compute-capable context; one shared campaign cache per process so
 *  "warm" means warm for every dispatcher and server in this file. */
vn::AnalysisContext
computeContext()
{
    static std::string cache = scratchDir("campaign_cache");
    vn::AnalysisContext ctx;
    ctx.kit = &kit();
    ctx.window = 6e-6;
    ctx.unsync_draws = 2;
    ctx.consecutive_events = 200;
    ctx.campaign.cache_dir = cache;
    return ctx;
}

DroopTraceSpec
traceSpec(double window)
{
    DroopTraceSpec spec;
    spec.freq_hz = 2.4e6;
    spec.window = window;
    spec.core = 1;
    spec.decimation = 8;
    return spec;
}

AnyRequest
traceRequest(double window)
{
    return AnyRequest(TraceRequest{traceSpec(window)});
}

/** The spec every "warm interactive" request uses; warmed once. */
constexpr double kWarmWindow = 6e-6;
constexpr double kColdWindow = 8e-6;

void
warmTraceCache()
{
    static bool warmed = [] {
        auto ctx = computeContext();
        droopTraces(ctx,
                    std::vector<DroopTraceSpec>{traceSpec(kWarmWindow)});
        return true;
    }();
    (void)warmed;
}

// ---------------------------------------------------------------------
// Wfq: the queue in isolation. Items are ints; < 100 marks the
// interactive flow, >= 100 the batch flow.

TEST(Wfq, WeightedShareIsExactlyFourToOne)
{
    WfqConfig config;
    config.interactive_weight = 4.0;
    config.batch_weight = 1.0;
    config.promotion_age_ms = 0.0; // isolate the weights
    WfqQueue<int> queue(config);

    for (int i = 0; i < 60; ++i)
        queue.push(i, Tier::Interactive, /*client_id=*/1, /*now_ms=*/0.0);
    for (int i = 0; i < 60; ++i)
        queue.push(100 + i, Tier::Batch, /*client_id=*/2, /*now_ms=*/0.0);
    EXPECT_EQ(queue.size(), 120u);
    EXPECT_EQ(queue.depth(Tier::Interactive), 60u);
    EXPECT_EQ(queue.depth(Tier::Batch), 60u);

    // With both flows saturated, any window of pops splits 4:1 — the
    // first 50 pops are EXACTLY 40 interactive and 10 batch, and each
    // flow drains in FIFO order.
    int interactive_seen = 0, batch_seen = 0;
    int next_interactive = 0, next_batch = 100;
    for (int i = 0; i < 50; ++i) {
        auto tier = queue.peekTier(0.0);
        ASSERT_TRUE(tier.has_value());
        auto value = queue.pop(0.0);
        ASSERT_TRUE(value.has_value());
        if (*value < 100) {
            EXPECT_EQ(*tier, Tier::Interactive);
            EXPECT_EQ(*value, next_interactive++);
            ++interactive_seen;
        } else {
            EXPECT_EQ(*tier, Tier::Batch);
            EXPECT_EQ(*value, next_batch++);
            ++batch_seen;
        }
    }
    EXPECT_EQ(interactive_seen, 40);
    EXPECT_EQ(batch_seen, 10);
    EXPECT_EQ(queue.counters(Tier::Interactive).popped, 40u);
    EXPECT_EQ(queue.counters(Tier::Batch).popped, 10u);
    EXPECT_EQ(queue.counters(Tier::Interactive).promoted, 0u);
    EXPECT_EQ(queue.counters(Tier::Batch).promoted, 0u);

    // An idle flow accumulates no credit: drain everything, push one
    // item per flow much later — service resumes at the same 4:1
    // cadence (interactive first), not a burst repaying idle time.
    while (!queue.empty())
        queue.pop(0.0);
    queue.push(1000, Tier::Batch, 2, 5000.0);
    queue.push(2000, Tier::Interactive, 1, 5000.0);
    auto first = queue.pop(5000.0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 2000);
}

TEST(Wfq, PromotionServesTheStarvedHeadAtTheAgeBound)
{
    WfqConfig config;
    config.interactive_weight = 4.0;
    config.batch_weight = 1.0;
    config.promotion_age_ms = 50.0;
    WfqQueue<int> queue(config);

    // One batch item at t=0, then an interactive firehose at t=10
    // that would win on tags forever.
    queue.push(100, Tier::Batch, 2, 0.0);
    for (int i = 0; i < 32; ++i)
        queue.push(i, Tier::Interactive, 1, 10.0);

    // Below the age bound the weights rule: interactive pops.
    auto early = queue.pop(40.0);
    ASSERT_TRUE(early.has_value());
    EXPECT_EQ(*early, 0);
    EXPECT_EQ(queue.counters(Tier::Batch).promoted, 0u);

    // At t=60 the batch head is 60 ms old >= 50: it is promoted past
    // every smaller tag — the starvation bound, not the weights,
    // decides.
    auto promoted = queue.pop(60.0);
    ASSERT_TRUE(promoted.has_value());
    EXPECT_EQ(*promoted, 100);
    EXPECT_EQ(queue.counters(Tier::Batch).promoted, 1u);
    EXPECT_NEAR(queue.lastPopWaitMs(), 60.0, 1e-9);

    // Once both heads are over-age, the OLDEST wins — promotion is
    // FIFO across flows, so it cannot itself starve anyone.
    queue.push(101, Tier::Batch, 2, 70.0);
    auto oldest = queue.pop(200.0);
    ASSERT_TRUE(oldest.has_value());
    EXPECT_EQ(*oldest, 1)
        << "the t=10 interactive head predates the t=70 batch item";

    // promotion_age_ms <= 0 disables the guard entirely.
    WfqQueue<int> no_guard(WfqConfig{4.0, 1.0, 0.0});
    no_guard.push(100, Tier::Batch, 2, 0.0);
    no_guard.push(0, Tier::Interactive, 1, 0.0);
    auto pick = no_guard.pop(1e9);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0) << "with the guard off, tags alone decide";
}

TEST(Wfq, DepthAndCounterAccountingStaysExact)
{
    WfqQueue<int> queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.peekTier(0.0).has_value());
    EXPECT_FALSE(queue.pop(0.0).has_value());

    queue.push(1, Tier::Interactive, 7, 0.0);
    queue.push(2, Tier::Batch, 7, 1.0);
    queue.push(3, Tier::Batch, 8, 2.0);
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.depth(Tier::Interactive), 1u);
    EXPECT_EQ(queue.depth(Tier::Batch), 2u);
    EXPECT_EQ(queue.counters(Tier::Interactive).pushed, 1u);
    EXPECT_EQ(queue.counters(Tier::Batch).pushed, 2u);

    while (queue.pop(10.0).has_value()) {
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.depth(Tier::Interactive), 0u);
    EXPECT_EQ(queue.depth(Tier::Batch), 0u);
    EXPECT_EQ(queue.counters(Tier::Interactive).popped, 1u);
    EXPECT_EQ(queue.counters(Tier::Batch).popped, 2u);
}

// ---------------------------------------------------------------------
// Admission: the dispatcher's classification and backpressure.

TEST(Admission, ClassificationFollowsVerbAndCacheState)
{
    warmTraceCache();
    auto ctx = computeContext();
    Dispatcher dispatcher(ctx, DispatcherConfig{});

    // A warmed trace is a cache hit => Interactive; a cold one is a
    // campaign => Batch. The probe uses the same key the campaign
    // stores under, so this is exact, not heuristic.
    EXPECT_EQ(dispatcher.classify(traceRequest(kWarmWindow)),
              Tier::Interactive);
    EXPECT_EQ(dispatcher.classify(traceRequest(kColdWindow)),
              Tier::Batch);

    // A cold sweep is Batch; map/margin/guardband are Batch even when
    // their results might be cached (their scopes carry per-request
    // extras the admission probe cannot reconstruct).
    SweepRequest sweep;
    sweep.spec.freq_hz = 3.1e6;
    EXPECT_EQ(dispatcher.classify(AnyRequest(sweep)), Tier::Batch);
    MapRequest map;
    EXPECT_EQ(dispatcher.classify(AnyRequest(map)), Tier::Batch);

    // Without a cache directory there is no probe: everything that is
    // not a control verb rides the batch tier.
    vn::AnalysisContext bare = computeContext();
    bare.campaign.cache_dir.clear();
    Dispatcher no_cache(bare, DispatcherConfig{});
    EXPECT_EQ(no_cache.classify(traceRequest(kWarmWindow)), Tier::Batch);
}

TEST(Admission, RetryAfterHintIsPerTier)
{
    warmTraceCache();
    auto ctx = computeContext();

    DispatcherConfig config;
    config.queue_depth = 2; // per tier
    config.max_batch = 1;
    config.batch_window_ms = 10;

    // Completion records; declared before the dispatcher so they
    // outlive the drain in its destructor.
    std::mutex mutex;
    std::vector<WireError> rejects;
    auto record = [&](std::variant<AnyResult, WireError> outcome) {
        if (std::holds_alternative<WireError>(outcome)) {
            std::lock_guard<std::mutex> lock(mutex);
            rejects.push_back(std::get<WireError>(outcome));
        }
    };

    Dispatcher dispatcher(ctx, config);
    dispatcher.pauseForTest(true); // fill the queue deterministically
    dispatcher.start();

    // Fill both tiers to their (per-tier!) caps.
    for (int i = 0; i < 2; ++i)
        dispatcher.submit(traceRequest(kWarmWindow), std::nullopt,
                          record, /*client_id=*/1);
    for (int i = 0; i < 2; ++i)
        dispatcher.submit(traceRequest(kColdWindow), std::nullopt,
                          record, /*client_id=*/2);
    EXPECT_EQ(dispatcher.queueDepth(Tier::Interactive), 2u);
    EXPECT_EQ(dispatcher.queueDepth(Tier::Batch), 2u);
    {
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_TRUE(rejects.empty());
    }

    // The interactive hint waits out ONLY the interactive backlog:
    //   10 ms * (1 + 2/1) = 30.  The batch hint waits out both tiers:
    //   10 ms * (1 + 4/1) = 50.  A shared global hint would tell the
    // interactive client to back off for the batch queue's horizon —
    // the regression this test pins down.
    dispatcher.submit(traceRequest(kWarmWindow), std::nullopt, record, 1);
    dispatcher.submit(traceRequest(kColdWindow), std::nullopt, record, 2);
    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_EQ(rejects.size(), 2u);
        EXPECT_EQ(rejects[0].code, "overloaded");
        EXPECT_DOUBLE_EQ(rejects[0].retry_after_ms, 30.0);
        EXPECT_EQ(rejects[1].code, "overloaded");
        EXPECT_DOUBLE_EQ(rejects[1].retry_after_ms, 50.0);
        EXPECT_NE(rejects[0].message.find("interactive"),
                  std::string::npos);
        EXPECT_NE(rejects[1].message.find("batch"), std::string::npos);
    }

    ServiceCounters counters = dispatcher.counters();
    EXPECT_EQ(counters.tier[0].admitted, 2u);
    EXPECT_EQ(counters.tier[1].admitted, 2u);
    EXPECT_EQ(counters.tier[0].rejected_overloaded, 1u);
    EXPECT_EQ(counters.tier[1].rejected_overloaded, 1u);

    dispatcher.pauseForTest(false); // let the destructor drain cleanly
}

TEST(Admission, StarvedBatchRequestIsServedWithinThePromotionAge)
{
    warmTraceCache();
    auto ctx = computeContext();

    DispatcherConfig config;
    config.max_batch = 1; // one WFQ decision per drained batch
    config.batch_window_ms = 0;
    config.wfq.promotion_age_ms = 50.0;

    // A hand-cranked clock: enqueue ages (and thus promotion) are
    // driven by the test, so this is deterministic, not timing-based.
    auto fake_ms = std::make_shared<std::atomic<double>>(0.0);

    std::mutex mutex;
    std::vector<Tier> completion_order;
    auto recordTier = [&](Tier tier) {
        return [&, tier](std::variant<AnyResult, WireError> outcome) {
            EXPECT_TRUE(std::holds_alternative<AnyResult>(outcome));
            std::lock_guard<std::mutex> lock(mutex);
            completion_order.push_back(tier);
        };
    };

    Dispatcher dispatcher(ctx, config);
    dispatcher.setClockForTest([fake_ms] { return fake_ms->load(); });
    dispatcher.pauseForTest(true);
    dispatcher.start();

    // One batch request at t=0 behind eight interactive cache hits
    // enqueued at t=10; by t=100 the batch head is 100 ms old, twice
    // the promotion age, while every interactive tag still beats it.
    // Its window must be one no earlier test ever computed (a warmed
    // cache would reclassify it Interactive).
    constexpr double kStarvedWindow = 1.2e-5;
    ASSERT_EQ(dispatcher.classify(traceRequest(kStarvedWindow)),
              Tier::Batch);
    dispatcher.submit(traceRequest(kStarvedWindow), std::nullopt,
                      recordTier(Tier::Batch), /*client_id=*/1);
    fake_ms->store(10.0);
    for (int i = 0; i < 8; ++i)
        dispatcher.submit(traceRequest(kWarmWindow), std::nullopt,
                          recordTier(Tier::Interactive),
                          /*client_id=*/2);
    fake_ms->store(100.0);
    dispatcher.pauseForTest(false);

    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        std::lock_guard<std::mutex> lock(mutex);
        if (completion_order.size() == 9)
            break;
        std::this_thread::yield();
    }

    {
        std::lock_guard<std::mutex> lock(mutex);
        ASSERT_EQ(completion_order.size(), 9u);
        EXPECT_EQ(completion_order.front(), Tier::Batch)
            << "the over-age batch request must be drained FIRST, "
               "ahead of every better-tagged interactive item";
    }
    ServiceCounters counters = dispatcher.counters();
    EXPECT_EQ(counters.tier[1].promoted, 1u);
    // The clock is frozen at t=100, so by the time the batcher gets
    // to the interactive items they are over-age too — all eight pop
    // through the promotion path. Deterministic under the fake clock.
    EXPECT_EQ(counters.tier[0].promoted, 8u);
}

// ---------------------------------------------------------------------
// AdmissionQoS: the server-level guarantee, observed the way an
// operator would observe it — through /metrics.

/** First value of `name<space>` in a Prometheus text body. */
double
metricValue(const std::string &body, const std::string &name)
{
    std::string needle = name + " ";
    size_t pos = 0;
    while ((pos = body.find(needle, pos)) != std::string::npos) {
        if (pos == 0 || body[pos - 1] == '\n')
            return std::strtod(body.c_str() + pos + needle.size(),
                               nullptr);
        pos += needle.size();
    }
    ADD_FAILURE() << "metric not found: " << name;
    return -1.0;
}

/** Cumulative count of a histogram bucket `le` (exact label match). */
double
bucketCount(const std::string &body, const std::string &histogram,
            const std::string &le)
{
    return metricValue(body,
                       histogram + "_bucket{le=\"" + le + "\"}");
}

TEST(AdmissionQoS, PingStaysFastUnderASaturatedBatchQueueAndStatsMatchMetrics)
{
    warmTraceCache();
    auto ctx = computeContext();
    ServerConfig config;
    config.port = 0;
    config.http_port = 0;
    Server server(ctx, config);
    server.start();
    server.pauseForTest(true); // queued batch work stays queued

    // Saturate the batch tier: 12 distinct cold traces from clients
    // that never read their responses.
    const int kBatchLoad = 12;
    std::vector<Client> batch_clients;
    for (int i = 0; i < kBatchLoad; ++i) {
        batch_clients.emplace_back(server.port());
        Json request = Json::object();
        request.set("id", Json::number(i + 1));
        request.set("verb", Json::str("trace"));
        request.set("params",
                    encodeRequestParams(
                        traceRequest(9e-6 + i * 2e-7)));
        ASSERT_TRUE(writeFrame(batch_clients.back().nativeHandle(),
                               request.dump()));
    }

    // Admission is asynchronous to the writes; wait for the depth.
    Client observer(server.port());
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    Json stats;
    while (std::chrono::steady_clock::now() < deadline) {
        stats = observer.stats();
        if (stats.at("admission").at("batch_depth").asNumber() ==
            kBatchLoad)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(stats.at("admission").at("batch_depth").asNumber(),
              static_cast<double>(kBatchLoad));

    // 100 interactive pings while the batch queue is full. Each is
    // answered inline — never behind the queue — so the interactive
    // tier's histogram now holds 100 sub-bound samples.
    Client pinger(server.port());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(pinger.ping(), kProtocolVersion);

    stats = observer.stats();
    HttpResponse metrics = httpRequestForTest(
        server.httpPort(),
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
    ASSERT_EQ(metrics.status, 200);
    const std::string &body = metrics.body;

    // QoS bound: p99 of the interactive wait is within 100 ms even
    // with the batch tier saturated — at least 99 of the 100 pings
    // landed at or below the le="100" bucket.
    double total =
        bucketCount(body, "vnoised_interactive_wait_ms", "+Inf");
    double within =
        bucketCount(body, "vnoised_interactive_wait_ms", "100");
    ASSERT_GE(total, 100.0);
    EXPECT_GE(within / total, 0.99)
        << "interactive p99 exceeded 100 ms under batch saturation";

    // The framed stats admission section and the Prometheus rendering
    // are two encodings of the same counters and must agree EXACTLY.
    const Json &admission = stats.at("admission");
    struct Pair
    {
        const char *stats_key;
        const char *metric;
    };
    const Pair pairs[] = {
        {"interactive_admitted_total",
         "vnoised_admission_interactive_admitted_total"},
        {"interactive_rejected_overloaded_total",
         "vnoised_admission_interactive_rejected_overloaded_total"},
        {"interactive_promoted_total",
         "vnoised_admission_interactive_promoted_total"},
        {"interactive_depth", "vnoised_admission_interactive_depth"},
        {"batch_admitted_total",
         "vnoised_admission_batch_admitted_total"},
        {"batch_rejected_overloaded_total",
         "vnoised_admission_batch_rejected_overloaded_total"},
        {"batch_promoted_total",
         "vnoised_admission_batch_promoted_total"},
        {"batch_depth", "vnoised_admission_batch_depth"},
    };
    for (const Pair &pair : pairs) {
        SCOPED_TRACE(pair.metric);
        EXPECT_EQ(metricValue(body, pair.metric),
                  admission.at(pair.stats_key).asNumber());
    }
    // And the load is where this test put it.
    EXPECT_EQ(admission.at("batch_depth").asNumber(),
              static_cast<double>(kBatchLoad));
    EXPECT_EQ(admission.at("batch_admitted_total").asNumber(),
              static_cast<double>(kBatchLoad));
    EXPECT_EQ(admission.at("interactive_depth").asNumber(), 0.0);

    // Let the queued campaigns run to completion before teardown.
    server.pauseForTest(false);
    batch_clients.clear();
    server.beginShutdown();
    server.wait();
}

} // namespace
