/**
 * @file
 * Tests of the vnoise_router fleet layer:
 *
 *  - Ring.*: placement is a pure function of (seed, member set,
 *    vnodes) — deterministic, insertion-order independent — and
 *    removing a member remaps ONLY that member's arc; shares are
 *    positive and sum to one.
 *  - Router.*: the control plane — the extended ping handshake, scope
 *    consensus excluding a dissenting backend, the no-healthy-owner
 *    reject, and the /metrics + drain-aware /readyz gateway.
 *  - RouterForward.*: the regression for the relay contract — a
 *    backend's `overloaded` reject crosses the router with its
 *    retry_after_ms hint byte-for-byte intact, and a resilient client
 *    on the far side still honors the hint as a backoff floor.
 *  - RouterE2E.*: the acceptance run — an 8-client campaign through
 *    the router over 4 backends returns byte-identical results to a
 *    single-node vnoised, including when one backend is killed
 *    mid-campaign (its arc fails over, everyone else's placement is
 *    untouched).
 *  - RouterCache.*: a repeated request is answered from the shared
 *    content-addressed result tier without touching a backend.
 *  - RouterFaultReplay.*: seeded faultnet carnage in front of one
 *    backend of a 4-backend fleet is absorbed by slot retries + ring
 *    fail-over with zero client-visible errors and byte-identical
 *    results (scripts/check.sh runs this with two different seeds).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "router/ring.hh"
#include "router/router.hh"
#include "service/client.hh"
#include "service/faultnet.hh"
#include "service/http.hh"
#include "service/resilient.hh"
#include "service/server.hh"

namespace
{

using namespace vn;
using namespace vn::service;
using vn::router::BackendConfig;
using vn::router::Ring;
using vn::router::RingConfig;
using vn::router::Router;
using vn::router::RouterConfig;
using vn::router::RouterCounters;

/** Context with no kit: control-verb tests never reach a
 *  computation. */
vn::AnalysisContext
bareContext()
{
    vn::AnalysisContext ctx;
    ctx.campaign.cache_dir.clear();
    return ctx;
}

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Reduced-cost kit (same recipe as test_service.cc). */
const vn::StressmarkKit &
kit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 300;
        params.search.ipc_filter_keep = 32;
        params.search.ipc_eval_instrs = 200;
        params.search.power_eval_instrs = 800;
        vn::StressmarkKit built(core(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

/** A per-process scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &leaf)
{
    std::string dir = ::testing::TempDir() + "vnoise_router_" +
                      std::to_string(::getpid()) + "_" + leaf;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

/**
 * Compute-capable context. Every fleet member (and the single-node
 * reference) shares one campaign cache directory: identical scopes
 * mean the first computation of each sweep point is the only one, and
 * a cache replay is bit-identical by the tier-3 cache guarantee — so
 * the byte-identity assertions below are really exercising the relay
 * path, not burning CPU on repeated simulation.
 */
vn::AnalysisContext
computeContext()
{
    static std::string cache = scratchDir("campaign_cache");
    vn::AnalysisContext ctx;
    ctx.kit = &kit();
    ctx.window = 6e-6;
    ctx.unsync_draws = 2;
    ctx.consecutive_events = 200;
    ctx.campaign.cache_dir = cache;
    return ctx;
}

/** A loopback port that nothing listens on. */
int
deadPort()
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    int port = ntohs(addr.sin_port);
    ::close(fd); // bound but never listened: connects are refused
    return port;
}

/** The spec family every compute test in this file draws from. */
SweepRequest
sweepSpec(int c)
{
    return SweepRequest{{1.0e6 + 2e5 * c, true}};
}

Json
sweepParams(int c)
{
    return encodeRequestParams(AnyRequest(sweepSpec(c)));
}

/** Router config with probe-only health (no background flapping). */
RouterConfig
routerConfig(std::vector<BackendConfig> backends)
{
    RouterConfig config;
    config.port = 0;
    config.backends = std::move(backends);
    config.health_period_ms = 60000.0; // start()'s probe round only
    return config;
}

// ---------------------------------------------------------------------
// Ring: pure placement.

TEST(Ring, PlacementIsDeterministicAndInsertionOrderIndependent)
{
    RingConfig config;
    config.vnodes = 64;
    config.seed = 7;

    Ring forward(config), reversed(config);
    for (const char *m : {"a", "b", "c", "d"})
        forward.add(m);
    for (const char *m : {"d", "c", "b", "a"})
        reversed.add(m);

    Ring again(config);
    for (const char *m : {"a", "b", "c", "d"})
        again.add(m);

    for (int i = 0; i < 500; ++i) {
        std::string key = "key" + std::to_string(i);
        EXPECT_EQ(forward.ownerOf(key), again.ownerOf(key))
            << "same config, same members, different placement";
        EXPECT_EQ(forward.ownerOf(key), reversed.ownerOf(key))
            << "placement must not depend on insertion order";
        EXPECT_EQ(forward.keyPoint(key), again.keyPoint(key));
    }

    // A different seed is a different ring.
    RingConfig other = config;
    other.seed = 8;
    Ring reseeded(other);
    for (const char *m : {"a", "b", "c", "d"})
        reseeded.add(m);
    int moved = 0;
    for (int i = 0; i < 500; ++i) {
        std::string key = "key" + std::to_string(i);
        moved += reseeded.ownerOf(key) != forward.ownerOf(key);
    }
    EXPECT_GT(moved, 0);
}

TEST(Ring, RemovingAMemberRemapsOnlyItsOwnArc)
{
    RingConfig config;
    config.vnodes = 64;
    config.seed = 1;

    Ring full(config);
    for (const char *m : {"s0", "s1", "s2", "s3"})
        full.add(m);

    const int kKeys = 2000;
    std::vector<std::string> before(kKeys);
    int victim_keys = 0;
    for (int i = 0; i < kKeys; ++i) {
        before[static_cast<size_t>(i)] =
            full.ownerOf("key" + std::to_string(i));
        victim_keys += before[static_cast<size_t>(i)] == "s2";
    }
    ASSERT_GT(victim_keys, 0) << "the victim must own some keys";

    full.remove("s2");
    EXPECT_FALSE(full.contains("s2"));
    EXPECT_EQ(full.size(), 3u);

    // Placement is a function of the member set: the shrunken ring is
    // the same ring one would have built without the victim.
    Ring rebuilt(config);
    for (const char *m : {"s0", "s1", "s3"})
        rebuilt.add(m);

    for (int i = 0; i < kKeys; ++i) {
        std::string key = "key" + std::to_string(i);
        const std::string &now = full.ownerOf(key);
        EXPECT_EQ(now, rebuilt.ownerOf(key));
        if (before[static_cast<size_t>(i)] != "s2")
            EXPECT_EQ(now, before[static_cast<size_t>(i)])
                << key << " moved although its owner survived";
        else
            EXPECT_NE(now, "s2");
    }
}

TEST(Ring, SharesArePositiveAndSumToOne)
{
    Ring ring;
    for (const char *m : {"a", "b", "c", "d"})
        ring.add(m);

    double sum = 0.0;
    for (const std::string &m : ring.members()) {
        double share = ring.shareOf(m);
        EXPECT_GT(share, 0.0);
        EXPECT_LT(share, 1.0);
        sum += share;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(ring.shareOf("absent"), 0.0);

    // Fallback order: owner first, then distinct successors.
    std::vector<std::string> owners = ring.ownersOf("some key", 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.ownerOf("some key"));
    std::set<std::string> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), owners.size());
    EXPECT_EQ(ring.ownersOf("some key", 10).size(), 4u)
        << "limit clamps to the member count";
}

// ---------------------------------------------------------------------
// Router: control plane.

TEST(Router, PingAnnouncesTheFleetAndItsScope)
{
    auto ctx = bareContext();
    ServerConfig sconfig;
    sconfig.port = 0;
    Server backend(ctx, sconfig);
    backend.start();

    Router router(routerConfig({{"b0", backend.port(), -1}}));
    router.start();
    EXPECT_EQ(router.healthyBackends(), 1u);
    EXPECT_EQ(router.fleetScope(), backend.scopeFingerprint());

    Client client(router.port());
    Json result = client.call("ping", Json::object());
    EXPECT_TRUE(result.at("pong").asBool());
    EXPECT_TRUE(result.at("router").asBool());
    EXPECT_EQ(result.at("protocol").asNumber(), kProtocolVersion);
    EXPECT_EQ(result.at("scope").asString(),
              backend.scopeFingerprint());
    EXPECT_EQ(result.at("backends").asNumber(), 1.0);
    EXPECT_EQ(result.at("healthy").asNumber(), 1.0);

    // The stats document carries the ring and per-backend telemetry.
    Json stats = client.call("stats", Json::object());
    EXPECT_EQ(stats.at("router").at("healthy_backends").asNumber(),
              1.0);
    EXPECT_EQ(stats.at("backends").at("b0").at("ring_share").asNumber(),
              1.0);

    router.beginShutdown();
    router.wait();
    backend.beginShutdown();
    backend.wait();
}

TEST(Router, DissentingScopeIsExcludedFromTheFleet)
{
    auto ctx_a = bareContext();
    auto ctx_b = bareContext();
    ctx_b.window = 9e-6; // a different campaign scope

    ServerConfig sconfig;
    sconfig.port = 0;
    Server a(ctx_a, sconfig);
    Server b(ctx_b, sconfig);
    a.start();
    b.start();
    ASSERT_NE(a.scopeFingerprint(), b.scopeFingerprint());

    // Consensus is the first live backend in config order: `a` wins,
    // `b` would silently compute different answers and is excluded.
    Router router(routerConfig(
        {{"a", a.port(), -1}, {"b", b.port(), -1}}));
    router.start();
    EXPECT_EQ(router.healthyBackends(), 1u);
    EXPECT_EQ(router.fleetScope(), a.scopeFingerprint());
    EXPECT_GE(router.counters().scope_mismatch, 1u);

    router.beginShutdown();
    router.wait();
    a.beginShutdown();
    a.wait();
    b.beginShutdown();
    b.wait();
}

TEST(Router, NoHealthyOwnerIsARetryableReject)
{
    // The lone backend never answers a probe: compute requests are
    // shed with `overloaded` and the health period as the retry hint.
    RouterConfig config = routerConfig({{"dead", deadPort(), -1}});
    Router router(config);
    router.start();
    EXPECT_EQ(router.healthyBackends(), 0u);

    Client client(router.port());
    try {
        client.call("sweep", sweepParams(0));
        FAIL() << "no healthy backend can own the key";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), "overloaded");
        EXPECT_EQ(e.retryAfterMs(), config.health_period_ms);
    }
    EXPECT_EQ(router.counters().no_backend, 1u);

    // Control verbs still answer: the router itself is healthy.
    EXPECT_TRUE(
        client.call("ping", Json::object()).at("pong").asBool());

    router.beginShutdown();
    router.wait();
}

TEST(Router, MetricsGatewayExposesRingStateAndDrains)
{
    auto ctx = bareContext();
    ServerConfig sconfig;
    sconfig.port = 0;
    Server backend(ctx, sconfig);
    backend.start();

    RouterConfig config = routerConfig({{"b0", backend.port(), -1}});
    config.http_port = 0;
    Router router(config);
    router.start();
    ASSERT_GE(router.httpPort(), 0);

    std::string get_metrics =
        "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
    HttpResponse metrics =
        httpRequestForTest(router.httpPort(), get_metrics);
    EXPECT_EQ(metrics.status, 200);
    for (const char *series :
         {"vnoised_router_forwarded_total",
          "vnoised_router_rebalanced_total",
          "vnoised_router_hedged_total",
          "vnoised_router_healthy_backends",
          "vnoised_backends_b0_ring_share",
          "vnoised_backends_b0_breaker_state"})
        EXPECT_NE(metrics.body.find(series), std::string::npos)
            << "missing series " << series;

    std::string get_readyz = "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n";
    EXPECT_EQ(httpRequestForTest(router.httpPort(), get_readyz).status,
              200);
    router.beginShutdown();
    EXPECT_EQ(httpRequestForTest(router.httpPort(), get_readyz).status,
              503)
        << "a draining router must fail readiness before it stops";

    router.wait();
    backend.beginShutdown();
    backend.wait();
}

// ---------------------------------------------------------------------
// RouterForward: the relay contract for backpressure.

TEST(RouterForward, RetryAfterHintSurvivesTheRelayUnmodified)
{
    // The backend sheds the first two submissions with a distinctive
    // retry_after_ms. With slot retries disabled the router must relay
    // that reject — not absorb it, not rewrite the hint.
    auto ctx = computeContext();
    ScriptedFaultHook hook(FaultSchedule().overloaded(0, 2, 77.5));
    ServerConfig sconfig;
    sconfig.port = 0;
    sconfig.dispatcher.fault = &hook;
    Server backend(ctx, sconfig);
    backend.start();

    RouterConfig config = routerConfig({{"b0", backend.port(), -1}});
    config.retry.max_attempts = 1; // relay the reject, don't retry it
    Router router(config);
    router.start();
    ASSERT_EQ(router.healthyBackends(), 1u);

    // A plain client sees the backend's hint byte-for-byte.
    Client plain(router.port());
    try {
        plain.call("sweep", sweepParams(0));
        FAIL() << "the hook rejects the first submission";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), "overloaded");
        EXPECT_EQ(e.retryAfterMs(), 77.5);
    }

    // A resilient client behind the router floors its backoff at the
    // relayed hint, exactly as it would against a bare vnoised.
    ResilientClientConfig rconfig;
    rconfig.port = router.port();
    rconfig.retry.max_attempts = 4;
    rconfig.retry.backoff_base_ms = 0.1;
    rconfig.retry.backoff_cap_ms = 1.0;
    ResilientClient resilient(rconfig);
    std::vector<double> delays;
    resilient.setSleepForTest(
        [&](double ms) { delays.push_back(ms); });

    Json result = resilient.call("sweep", sweepParams(0));
    EXPECT_TRUE(result.isObject());
    ASSERT_EQ(delays.size(), 1u);
    EXPECT_GE(delays[0], 77.5)
        << "the relayed retry_after_ms must floor the client backoff";
    EXPECT_EQ(hook.injected(), 2u);

    router.beginShutdown();
    router.wait();
    backend.beginShutdown();
    backend.wait();
}

// ---------------------------------------------------------------------
// RouterE2E: the acceptance run.

TEST(RouterE2E, FleetMatchesSingleNodeEvenWhenABackendDies)
{
    const int kClients = 8;

    // Single-node reference: the canonical 17-digit dumps.
    auto ctx = computeContext();
    ServerConfig sconfig;
    sconfig.port = 0;
    std::vector<std::string> reference;
    {
        Server single(ctx, sconfig);
        single.start();
        Client client(single.port());
        for (int c = 0; c < kClients; ++c)
            reference.push_back(
                client.call("sweep", sweepParams(c)).dump());
        single.beginShutdown();
        single.wait();
    }

    // The fleet: four backends with identical scopes.
    std::vector<std::unique_ptr<Server>> fleet;
    std::vector<BackendConfig> backends;
    for (int i = 0; i < 4; ++i) {
        fleet.push_back(std::make_unique<Server>(ctx, sconfig));
        fleet.back()->start();
        backends.push_back(
            {"s" + std::to_string(i), fleet.back()->port(), -1});
    }
    Router router(routerConfig(std::move(backends)));
    router.start();
    ASSERT_EQ(router.healthyBackends(), 4u);

    // 8 concurrent clients, one request each, through the router.
    std::vector<std::string> dumps(static_cast<size_t>(kClients));
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                Client client(router.port());
                dumps[static_cast<size_t>(c)] =
                    client.call("sweep", sweepParams(c)).dump();
            } catch (const ServiceError &) {
                ++errors;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    ASSERT_EQ(errors.load(), 0);
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(dumps[static_cast<size_t>(c)],
                  reference[static_cast<size_t>(c)])
            << "request " << c
            << " diverged between fleet and single node";

    // Requests spread across the ring, not onto one backend.
    std::map<std::string, uint64_t> spread;
    Json stats = Json::parse(router.statsJson().dump());
    for (const auto &[name, b] : stats.at("backends").members())
        spread[name] = static_cast<uint64_t>(
            b.at("forwarded_total").asNumber());
    uint64_t busiest = 0;
    for (const auto &[name, count] : spread)
        busiest = std::max(busiest, count);
    EXPECT_LT(busiest, static_cast<uint64_t>(kClients))
        << "all 8 keys on one backend is not a ring";

    // Kill the backend that owns request 0's key, mid-campaign.
    std::string victim =
        router.ring().ownerOf(requestKey(AnyRequest(sweepSpec(0))));
    size_t victim_index =
        static_cast<size_t>(victim.back() - '0');
    ASSERT_LT(victim_index, fleet.size());
    fleet[victim_index]->beginShutdown();
    fleet[victim_index]->wait();

    // Every key still answers — the victim's arc fails over to its
    // ring successor, and results stay byte-identical (the successor
    // replays the shared campaign cache or recomputes the same math).
    Client after(router.port());
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(after.call("sweep", sweepParams(c)).dump(),
                  reference[static_cast<size_t>(c)])
            << "request " << c << " diverged after backend loss";
    RouterCounters counters = router.counters();
    EXPECT_GE(counters.rebalanced, 1u)
        << "the victim's keys must have failed over";
    EXPECT_EQ(counters.no_backend, 0u);

    router.beginShutdown();
    router.wait();
    for (size_t i = 0; i < fleet.size(); ++i) {
        if (i == victim_index)
            continue;
        fleet[i]->beginShutdown();
        fleet[i]->wait();
    }
}

// ---------------------------------------------------------------------
// RouterCache: the shared result tier.

TEST(RouterCache, RepeatedRequestIsServedWithoutABackend)
{
    auto ctx = computeContext();
    ServerConfig sconfig;
    sconfig.port = 0;
    Server backend(ctx, sconfig);
    backend.start();

    RouterConfig config = routerConfig({{"b0", backend.port(), -1}});
    config.cache_dir = scratchDir("router_cache");
    Router router(config);
    router.start();

    Client client(router.port());
    std::string first = client.call("sweep", sweepParams(0)).dump();
    std::string second = client.call("sweep", sweepParams(0)).dump();
    EXPECT_EQ(first, second)
        << "a cache replay must be byte-identical to the forward";

    RouterCounters counters = router.counters();
    EXPECT_EQ(counters.forwarded, 1u)
        << "the repeat must not reach a backend";
    EXPECT_EQ(counters.cache_stores, 1u);
    EXPECT_EQ(counters.cache_hits, 1u);

    router.beginShutdown();
    router.wait();
    backend.beginShutdown();
    backend.wait();
}

// ---------------------------------------------------------------------
// RouterFaultReplay: seeded carnage (check.sh runs two seeds).

TEST(RouterFaultReplay, SeededFaultsAreAbsorbedAndReplayIdentically)
{
    uint64_t seed = 17;
    if (const char *env = std::getenv("VNOISE_FAULT_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    const int kRequests = 4;
    auto ctx = computeContext();
    ServerConfig sconfig;
    sconfig.port = 0;
    std::vector<std::unique_ptr<Server>> fleet;
    for (int i = 0; i < 4; ++i) {
        fleet.push_back(std::make_unique<Server>(ctx, sconfig));
        fleet.back()->start();
    }

    auto campaign = [&](int s0_port,
                        RouterCounters *counters_out) {
        // 4-backend fleet; s0 is the (possibly proxied) one.
        std::vector<BackendConfig> backends = {{"s0", s0_port, -1}};
        for (int i = 1; i < 4; ++i)
            backends.push_back(
                {"s" + std::to_string(i), fleet[static_cast<size_t>(i)]->port(), -1});
        RouterConfig config = routerConfig(std::move(backends));
        config.retry.max_attempts = 4;
        config.retry.backoff_base_ms = 0.5;
        config.retry.backoff_cap_ms = 5.0;
        Router router(config);
        router.start();
        Client client(router.port());
        std::vector<std::string> dumps;
        for (int c = 0; c < kRequests; ++c)
            dumps.push_back(
                client.call("sweep", sweepParams(c)).dump());
        if (counters_out)
            *counters_out = router.counters();
        router.beginShutdown();
        router.wait();
        return dumps;
    };

    // Fault-free reference through the same fleet.
    std::vector<std::string> reference =
        campaign(fleet[0]->port(), nullptr);

    // The same campaign with seeded faults between the router and s0:
    // slot retries and arc fail-over must absorb every one of them.
    FaultSchedule schedule =
        FaultSchedule::random(seed, 2 * kRequests, 3);
    auto faulted = [&](RouterCounters *counters_out) {
        FaultProxy proxy(fleet[0]->port(), schedule);
        proxy.start();
        auto dumps = campaign(proxy.port(), counters_out);
        proxy.stop();
        return dumps;
    };

    RouterCounters first_counters;
    std::vector<std::string> first = faulted(&first_counters);
    ASSERT_EQ(first.size(), reference.size());
    for (int c = 0; c < kRequests; ++c)
        EXPECT_EQ(first[static_cast<size_t>(c)],
                  reference[static_cast<size_t>(c)])
            << "request " << c << " diverged under seed " << seed;
    EXPECT_EQ(first_counters.no_backend, 0u);

    // Replay: the same seed produces the same client-visible bytes.
    std::vector<std::string> second = faulted(nullptr);
    ASSERT_EQ(second.size(), first.size());
    for (int c = 0; c < kRequests; ++c)
        EXPECT_EQ(second[static_cast<size_t>(c)],
                  first[static_cast<size_t>(c)])
            << "replay diverged for request " << c;

    for (auto &server : fleet) {
        server->beginShutdown();
        server->wait();
    }
}

// ---------------------------------------------------------------------
// RouterStream: >1 MiB results relayed chunk-by-chunk through the
// router, never buffered inside it.

/** 60000 undecimated samples: ~1.2 MB encoded, past the frame cap. */
DroopTraceSpec
bigTraceSpec()
{
    DroopTraceSpec spec;
    spec.freq_hz = 2.4e6;
    spec.window = 6e-5;
    spec.core = 1;
    spec.decimation = 1;
    return spec;
}

/** The in-process campaign's canonical dump of the big trace; also
 *  warms the shared campaign cache so every backend replays it. */
const std::string &
bigTraceReferenceDump()
{
    static std::string dump = [] {
        auto ctx = computeContext();
        auto traces = droopTraces(
            ctx, std::vector<DroopTraceSpec>{bigTraceSpec()});
        return encodeResult(AnyResult(traces[0])).dump();
    }();
    return dump;
}

TEST(RouterStream, LargeTraceRelaysThroughTheFleetByteIdentical)
{
    auto ctx = computeContext();
    Json params =
        encodeRequestParams(AnyRequest(TraceRequest{bigTraceSpec()}));
    ASSERT_GT(bigTraceReferenceDump().size(), kDefaultMaxFrameBytes)
        << "the fixture must exceed the frame cap to prove anything";

    std::vector<std::unique_ptr<Server>> fleet;
    std::vector<BackendConfig> backends;
    for (int b = 0; b < 4; ++b) {
        ServerConfig server_config;
        server_config.port = 0;
        fleet.push_back(std::make_unique<Server>(ctx, server_config));
        fleet.back()->start();
        backends.push_back(BackendConfig{"node" + std::to_string(b),
                                         fleet.back()->port()});
    }

    // Shared result cache ON: the test proves streamed results bypass
    // it (they would not fit a response frame anyway).
    RouterConfig config = routerConfig(backends);
    config.cache_dir = scratchDir("router_stream_cache");
    Router router(config);
    router.start();
    ASSERT_EQ(router.healthyBackends(), 4u);

    // Twice through the router: both relays, both byte-identical to
    // the in-process campaign — and the second is NOT a cache answer,
    // because nothing was stored.
    Client client(router.port());
    client.setAcceptStream(true);
    for (int round = 0; round < 2; ++round) {
        Json result = client.call("trace", params);
        EXPECT_EQ(result.dump(), bigTraceReferenceDump())
            << "round " << round;
    }
    RouterCounters counters = router.counters();
    EXPECT_EQ(counters.streamed_relays, 2u);
    EXPECT_EQ(counters.forwarded, 2u);
    EXPECT_EQ(counters.cache_stores, 0u)
        << "a streamed result must never be buffered into the cache";
    EXPECT_EQ(counters.cache_hits, 0u);
    EXPECT_EQ(counters.rebalanced, 0u);

    // Single node, no router: the same bytes. The relay added and
    // removed nothing.
    Client direct(fleet[0]->port());
    direct.setAcceptStream(true);
    EXPECT_EQ(direct.call("trace", params).dump(),
              bigTraceReferenceDump());

    // A router client that did NOT opt in still gets the structured
    // reject, relayed from the backend.
    Client plain(router.port());
    try {
        plain.call("trace", params);
        ADD_FAILURE() << "expected result_too_large";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), "result_too_large") << e.what();
    }

    for (auto &server : fleet) {
        server->beginShutdown();
        server->wait();
    }
}

TEST(RouterStream, BackendCutMidStreamFailsOverByteIdentical)
{
    auto ctx = computeContext();
    Json params =
        encodeRequestParams(AnyRequest(TraceRequest{bigTraceSpec()}));
    std::string routing_key =
        requestKey(AnyRequest(TraceRequest{bigTraceSpec()}));

    // Ring placement is a pure function of (seed, members, vnodes),
    // so the trace's owner is known before any socket exists — only
    // that backend gets the fault proxy.
    const std::vector<std::string> names = {"node0", "node1", "node2",
                                            "node3"};
    RouterConfig config = routerConfig({});
    Ring ring(config.ring);
    for (const std::string &name : names)
        ring.add(name);
    std::string owner = ring.ownerOf(routing_key);
    std::string successor = ring.ownersOf(routing_key, 2)[1];
    ASSERT_NE(owner, successor);

    std::vector<std::unique_ptr<Server>> fleet;
    std::map<std::string, int> ports;
    for (const std::string &name : names) {
        ServerConfig server_config;
        server_config.port = 0;
        fleet.push_back(std::make_unique<Server>(ctx, server_config));
        fleet.back()->start();
        ports[name] = fleet.back()->port();
    }

    // The owner's proxy: request 0 is the router's start() health
    // ping; requests 1 and 2 are the trace's two forward attempts
    // (the router's per-slot policy is max_attempts = 2). Cutting
    // both — once deep in the stream, once mid-chunk — kills the
    // owner for this request, forcing ring fail-over to the
    // successor, which restarts the stream from a fresh begin.
    FaultProxy proxy(ports[owner], FaultSchedule()
                                       .cutMidFrame(1, 300000)
                                       .cutMidFrame(2, 120000));
    proxy.start();

    for (const std::string &name : names)
        config.backends.push_back(BackendConfig{
            name, name == owner ? proxy.port() : ports[name]});
    Router router(config);
    router.start();
    ASSERT_EQ(router.healthyBackends(), 4u);

    Client client(router.port());
    client.setAcceptStream(true);
    Json result = client.call("trace", params);
    EXPECT_EQ(result.dump(), bigTraceReferenceDump())
        << "fail-over reassembly diverged from the campaign bytes";

    RouterCounters counters = router.counters();
    EXPECT_GE(counters.rebalanced, 1u);
    EXPECT_EQ(counters.streamed_relays, 1u);
    FaultProxyCounters faults = proxy.counters();
    EXPECT_EQ(faults.injected_cuts, 2u);
    EXPECT_GT(faults.relayed_stream_frames, 0u)
        << "the cuts must land mid-stream, not before it";

    proxy.stop();
    for (auto &server : fleet) {
        server->beginShutdown();
        server->wait();
    }
}

} // namespace
