/**
 * @file
 * Skitter sensor model tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/waveform.hh"
#include "measure/skitter.hh"
#include "util/logging.hh"

namespace
{

TEST(SkitterTest, NominalPositionWithinLine)
{
    vn::Skitter sk;
    EXPECT_GT(sk.nominalPosition(), 5.0);
    EXPECT_LE(sk.nominalPosition(), sk.params().inverters);
    EXPECT_NEAR(sk.edgePosition(sk.params().vnom), sk.nominalPosition(),
                1e-12);
}

TEST(SkitterTest, EdgePositionMonotoneInVoltage)
{
    vn::Skitter sk;
    double prev = -1.0;
    for (double v = 0.5; v <= 1.3; v += 0.01) {
        double pos = sk.edgePosition(v);
        EXPECT_GE(pos, prev) << "v=" << v;
        prev = pos;
    }
}

TEST(SkitterTest, DroopLowersPosition)
{
    vn::Skitter sk;
    EXPECT_LT(sk.edgePosition(0.95), sk.nominalPosition());
    EXPECT_GT(sk.edgePosition(1.15), sk.nominalPosition());
}

TEST(SkitterTest, StallsBelowThreshold)
{
    vn::Skitter sk;
    EXPECT_EQ(sk.edgePosition(sk.params().vth), 0.0);
    EXPECT_EQ(sk.edgePosition(0.1), 0.0);
}

TEST(SkitterTest, ClampsAtLineEnd)
{
    vn::SkitterParams p;
    p.gain = 6.0; // very sensitive: overshoot runs off the line
    vn::Skitter sk(p);
    EXPECT_LE(sk.edgePosition(2.0), p.inverters);
}

TEST(SkitterTest, ConstantVoltageGivesZeroP2p)
{
    vn::Skitter sk;
    for (int i = 0; i < 100; ++i)
        sk.sample(1.05);
    EXPECT_EQ(sk.percentP2p(), 0.0);
    EXPECT_EQ(sk.sampleCount(), 100);
}

TEST(SkitterTest, StickyModeTracksExtremes)
{
    vn::Skitter sk;
    sk.sample(1.05);
    sk.sample(0.97);
    sk.sample(1.02);
    sk.sample(1.09);
    sk.sample(1.05);
    EXPECT_EQ(sk.minPosition(), sk.latchedPosition(0.97));
    EXPECT_EQ(sk.maxPosition(), sk.latchedPosition(1.09));
    EXPECT_GT(sk.percentP2p(), 0.0);
}

TEST(SkitterTest, BiggerDroopBiggerP2p)
{
    vn::Skitter a, b;
    a.sample(1.05);
    a.sample(1.00);
    b.sample(1.05);
    b.sample(0.93);
    EXPECT_GT(b.percentP2p(), a.percentP2p());
}

TEST(SkitterTest, ReadingsAreDiscretized)
{
    // Tiny voltage wiggles below one latch step read as zero noise:
    // the paper's step-function artifact.
    vn::Skitter sk;
    sk.sample(1.0500);
    sk.sample(1.0501);
    sk.sample(1.0499);
    EXPECT_EQ(sk.percentP2p(), 0.0);
}

TEST(SkitterTest, CompressionAtDeepDroop)
{
    // The same 50 mV increment moves the edge less when starting from a
    // deep droop (diminishing linearity, paper section V-E).
    vn::Skitter sk;
    double d_high = sk.edgePosition(1.05) - sk.edgePosition(1.00);
    double d_low = sk.edgePosition(0.80) - sk.edgePosition(0.75);
    EXPECT_LT(d_low, d_high);
}

TEST(SkitterTest, ResetClearsWindow)
{
    vn::Skitter sk;
    sk.sample(0.9);
    sk.sample(1.1);
    EXPECT_GT(sk.percentP2p(), 0.0);
    sk.reset();
    EXPECT_EQ(sk.percentP2p(), 0.0);
    EXPECT_EQ(sk.sampleCount(), 0);
}

TEST(SkitterTest, InvalidParamsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::SkitterParams p;
    p.vth = 2.0;
    EXPECT_THROW(vn::Skitter{p}, vn::FatalError);
    vn::SkitterParams q;
    q.inverters = 1;
    EXPECT_THROW(vn::Skitter{q}, vn::FatalError);
    vn::setThrowOnError(prev);
}


TEST(SkitterTest, ReplayMatchesOnlineSampling)
{
    // Feeding a waveform through replaySkitter equals sampling live.
    vn::Waveform trace(1e-9);
    for (int i = 0; i < 500; ++i)
        trace.push(1.05 - 0.06 * std::sin(2.0 * M_PI * i / 100.0));

    vn::Skitter live;
    for (size_t i = 0; i < trace.size(); ++i)
        live.sample(trace[i]);

    EXPECT_DOUBLE_EQ(vn::replaySkitter(trace), live.percentP2p());
    EXPECT_GT(vn::replaySkitter(trace), 5.0);
}

} // namespace
