/**
 * @file
 * Critical-path / R-Unit failure model tests.
 */

#include <gtest/gtest.h>

#include "measure/critpath.hh"
#include "util/logging.hh"

namespace
{

TEST(CritPathTest, NominalDelayMatchesFraction)
{
    vn::CriticalPathMonitor m;
    double period = 1.0 / m.params().clock_hz;
    EXPECT_NEAR(m.pathDelay(m.params().vnom),
                m.params().nominal_path_fraction * period, 1e-18);
}

TEST(CritPathTest, DelayGrowsAsVoltageDrops)
{
    vn::CriticalPathMonitor m;
    double prev = 0.0;
    for (double v = 1.2; v >= 0.6; v -= 0.05) {
        double d = m.pathDelay(v);
        EXPECT_GT(d, prev) << "v=" << v;
        prev = d;
    }
}

TEST(CritPathTest, CriticalVoltageConsistent)
{
    // At exactly v_crit the path consumes the whole cycle.
    vn::CriticalPathMonitor m;
    double period = 1.0 / m.params().clock_hz;
    EXPECT_NEAR(m.pathDelay(m.criticalVoltage()), period, period * 1e-9);
    EXPECT_LT(m.criticalVoltage(), m.params().vnom);
    EXPECT_GT(m.criticalVoltage(), m.params().vth);
}

TEST(CritPathTest, ViolationPredicate)
{
    vn::CriticalPathMonitor m;
    EXPECT_FALSE(m.violates(m.params().vnom));
    EXPECT_FALSE(m.violates(m.criticalVoltage() + 1e-6));
    EXPECT_TRUE(m.violates(m.criticalVoltage() - 1e-6));
}

TEST(CritPathTest, DefaultMarginNearTwelvePercent)
{
    // Default calibration: v_crit around 0.887 V for a 1.05 V supply.
    vn::CriticalPathMonitor m;
    double margin = (m.params().vnom - m.criticalVoltage()) /
                    m.params().vnom;
    EXPECT_GT(margin, 0.10);
    EXPECT_LT(margin, 0.22);
}

TEST(CritPathTest, TighterPathRaisesCriticalVoltage)
{
    vn::CritPathParams loose;
    vn::CritPathParams tight;
    tight.nominal_path_fraction = 0.9;
    vn::CriticalPathMonitor a(loose), b(tight);
    EXPECT_GT(b.criticalVoltage(), a.criticalVoltage());
}

TEST(CritPathTest, InvalidParamsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::CritPathParams p;
    p.nominal_path_fraction = 1.5;
    EXPECT_THROW(vn::CriticalPathMonitor{p}, vn::FatalError);
    vn::CritPathParams q;
    q.vth = 2.0;
    EXPECT_THROW(vn::CriticalPathMonitor{q}, vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
