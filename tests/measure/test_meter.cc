/**
 * @file
 * Power meter and oscilloscope tests.
 */

#include <gtest/gtest.h>

#include "measure/meter.hh"
#include "util/logging.hh"

namespace
{

TEST(PowerMeterTest, AverageOfSamples)
{
    vn::PowerMeter m;
    m.sample(1.0, 100.0);
    m.sample(1.0, 200.0);
    EXPECT_EQ(m.count(), 2u);
    EXPECT_DOUBLE_EQ(m.averageWatts(), 150.0);
    EXPECT_DOUBLE_EQ(m.peakWatts(), 200.0);
}

TEST(PowerMeterTest, MilliwattGranularity)
{
    vn::PowerMeter m;
    m.sample(1.0, 0.1234567);
    EXPECT_EQ(m.averageMilliwatts(), 123L);
}

TEST(PowerMeterTest, ResetClears)
{
    vn::PowerMeter m;
    m.sample(1.0, 5.0);
    m.reset();
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.averageWatts(), 0.0);
}

TEST(OscilloscopeTest, CapturesEverySampleByDefault)
{
    vn::Oscilloscope scope(1e-9);
    for (int i = 0; i < 10; ++i)
        scope.sample(static_cast<double>(i));
    EXPECT_EQ(scope.trace().size(), 10u);
    EXPECT_DOUBLE_EQ(scope.trace()[3], 3.0);
    EXPECT_DOUBLE_EQ(scope.trace().dt(), 1e-9);
}

TEST(OscilloscopeTest, DecimationKeepsEveryNth)
{
    vn::Oscilloscope scope(1e-9, 4);
    for (int i = 0; i < 12; ++i)
        scope.sample(static_cast<double>(i));
    ASSERT_EQ(scope.trace().size(), 3u);
    EXPECT_DOUBLE_EQ(scope.trace()[0], 0.0);
    EXPECT_DOUBLE_EQ(scope.trace()[1], 4.0);
    EXPECT_DOUBLE_EQ(scope.trace()[2], 8.0);
    EXPECT_DOUBLE_EQ(scope.trace().dt(), 4e-9);
}

TEST(OscilloscopeTest, ZeroDecimationIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::Oscilloscope(1e-9, 0), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
