/**
 * @file
 * Tests for the synthetic z-like instruction table.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/table.hh"
#include "util/logging.hh"

namespace
{

TEST(InstrTableTest, HasExactly1301Instructions)
{
    // The zEC12 EPI profile of the paper's Table I has 1301 entries.
    EXPECT_EQ(vn::instrTable().size(), vn::kIsaSize);
    EXPECT_EQ(vn::kIsaSize, 1301u);
}

TEST(InstrTableTest, MnemonicsAreUnique)
{
    const auto &table = vn::instrTable();
    std::set<std::string> seen;
    for (size_t i = 0; i < table.size(); ++i) {
        auto [it, inserted] = seen.insert(table[i].mnemonic);
        EXPECT_TRUE(inserted) << "duplicate mnemonic " << table[i].mnemonic;
    }
}

TEST(InstrTableTest, TableOneAnchorsPresent)
{
    const auto &table = vn::instrTable();
    for (const char *mnem :
         {"CIB", "CRB", "BXHG", "CGIB", "CHHSI", "DDTRA", "MXTRA", "MDTRA",
          "STCK", "SRNM"}) {
        EXPECT_TRUE(table.contains(mnem)) << mnem;
    }

    const auto &cib = table.find("CIB");
    EXPECT_EQ(cib.unit, vn::FuncUnit::BRU);
    EXPECT_TRUE(cib.is_branch);
    EXPECT_EQ(cib.issue, vn::IssueClass::Pipelined);

    const auto &srnm = table.find("SRNM");
    EXPECT_EQ(srnm.unit, vn::FuncUnit::SYS);
    EXPECT_EQ(srnm.issue, vn::IssueClass::Serializing);

    const auto &ddtra = table.find("DDTRA");
    EXPECT_EQ(ddtra.unit, vn::FuncUnit::DFU);
    EXPECT_EQ(ddtra.issue, vn::IssueClass::NonPipelined);
    EXPECT_GT(ddtra.latency, 20);
}

TEST(InstrTableTest, UnknownMnemonicIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::instrTable().find("NOSUCHOP"), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(InstrTableTest, EveryUnitPopulated)
{
    const auto &table = vn::instrTable();
    for (int u = 0; u < vn::kNumFuncUnits; ++u) {
        auto unit = static_cast<vn::FuncUnit>(u);
        EXPECT_GT(table.byUnit(unit).size(), 5u) << vn::funcUnitName(unit);
    }
}

TEST(InstrTableTest, CategoriesConsistent)
{
    const auto &table = vn::instrTable();
    size_t total = 0;
    for (int u = 0; u < vn::kNumFuncUnits; ++u) {
        for (int c = 0; c < vn::kNumIssueClasses; ++c) {
            vn::InstrCategory cat{static_cast<vn::FuncUnit>(u),
                                  static_cast<vn::IssueClass>(c)};
            auto instrs = table.byCategory(cat);
            for (const auto *instr : instrs) {
                EXPECT_EQ(instr->unit, cat.unit);
                EXPECT_EQ(instr->issue, cat.issue);
            }
            total += instrs.size();
        }
    }
    EXPECT_EQ(total, table.size());
}

TEST(InstrTableTest, AttributesAreSane)
{
    const auto &table = vn::instrTable();
    for (size_t i = 0; i < table.size(); ++i) {
        const auto &d = table[i];
        EXPECT_GE(d.uops, 1) << d.mnemonic;
        EXPECT_GE(d.latency, 1) << d.mnemonic;
        EXPECT_GT(d.energy, 0.0) << d.mnemonic;
        EXPECT_TRUE(d.length_bytes == 2 || d.length_bytes == 4 ||
                    d.length_bytes == 6)
            << d.mnemonic;
        if (d.is_branch) {
            EXPECT_EQ(d.unit, vn::FuncUnit::BRU) << d.mnemonic;
        }
        if (d.issue == vn::IssueClass::Serializing) {
            EXPECT_EQ(d.unit, vn::FuncUnit::SYS) << d.mnemonic;
        }
    }
}

TEST(InstrTableTest, DeterministicAcrossInstances)
{
    // Two independently built tables are identical (fixed-seed
    // generation).
    vn::InstrTable a;
    vn::InstrTable b;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].mnemonic, b[i].mnemonic);
        EXPECT_DOUBLE_EQ(a[i].energy, b[i].energy);
        EXPECT_EQ(a[i].latency, b[i].latency);
    }
}

TEST(InstrTableTest, RankingConstraintsHold)
{
    // Non-anchor pipelined instructions stay below the CIB anchor's
    // per-uop energy; non-pipelined ones keep energy/latency above the
    // DDTRA floor. These invariants are what make Table I's extremes
    // reproducible.
    const auto &table = vn::instrTable();
    const std::set<std::string> anchors{"CIB",   "CRB",   "BXHG", "CGIB",
                                        "CHHSI", "DDTRA", "MXTRA",
                                        "MDTRA", "STCK",  "SRNM"};
    for (size_t i = 0; i < table.size(); ++i) {
        const auto &d = table[i];
        if (anchors.count(d.mnemonic))
            continue;
        if (d.issue == vn::IssueClass::Pipelined) {
            EXPECT_LE(d.energyPerUop(), 0.5201) << d.mnemonic;
        } else if (d.issue == vn::IssueClass::NonPipelined) {
            EXPECT_GE(d.energy / (d.latency * d.uops), 0.0399)
                << d.mnemonic;
        } else {
            EXPECT_GE(d.energy / (d.latency * d.uops), 0.0349)
                << d.mnemonic;
        }
    }
}

} // namespace
