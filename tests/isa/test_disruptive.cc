/**
 * @file
 * Disruptive-event pseudo-instruction tests: the section IV-C
 * negative findings hold on the model.
 */

#include <gtest/gtest.h>

#include "isa/disruptive.hh"
#include "isa/program.hh"
#include "isa/table.hh"
#include "uarch/core.hh"
#include "util/logging.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

double
power(const vn::Program &p)
{
    size_t min_instrs = std::max<size_t>(p.size() * 8, 1500);
    return core().run(p, min_instrs, min_instrs * 80).avg_power;
}

TEST(DisruptiveTest, CatalogueComplete)
{
    const auto &instrs = vn::disruptiveInstrs();
    EXPECT_EQ(instrs.size(), 4u);
    EXPECT_NO_THROW(vn::disruptiveInstr("L.L3MISS"));
    EXPECT_NO_THROW(vn::disruptiveInstr("BC.MISPRED"));
}

TEST(DisruptiveTest, UnknownMnemonicIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::disruptiveInstr("NOPE"), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(DisruptiveTest, NotPartOfTheEpiTable)
{
    for (const auto &d : vn::disruptiveInstrs())
        EXPECT_FALSE(vn::instrTable().contains(d.mnemonic))
            << d.mnemonic;
}

TEST(DisruptiveTest, PowerCloseToMinimumSequence)
{
    // Finding (a): every disruptive benchmark sits within ~10% of the
    // minimum-power sequence, far below the maximum.
    auto min_seq = vn::makeRepeatedProgram(
        &vn::instrTable().find("SRNM"), 200);
    double p_min = power(min_seq);

    for (const auto &d : vn::disruptiveInstrs()) {
        auto bench = vn::makeRepeatedProgram(&d, 200);
        double p = power(bench);
        EXPECT_LT(p, p_min * 1.10) << d.mnemonic;
        EXPECT_GT(p, p_min * 0.95) << d.mnemonic;
    }
}

TEST(DisruptiveTest, MissesDoNotRaiseMaxPower)
{
    // Finding (b): blending a missing load into a high-power sequence
    // lowers, not raises, its measured power.
    const auto &t = vn::instrTable();
    vn::Program max_like;
    for (int i = 0; i < 50; ++i) {
        max_like.push(&t.find("CIB"));
        max_like.push(&t.find("CHHSI"));
        max_like.push(&t.find("L"));
    }
    double p_max = power(max_like);

    vn::Program blended = max_like;
    blended.push(&vn::disruptiveInstr("L.MEMMISS"));
    double p_blend = power(blended);
    EXPECT_LT(p_blend, p_max);
}

} // namespace
