/**
 * @file
 * Tests for the Program container.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "isa/table.hh"

namespace
{

TEST(ProgramTest, PushAndAggregate)
{
    const auto &table = vn::instrTable();
    vn::Program p;
    p.push(&table.find("CIB"));
    p.push(&table.find("CHHSI"));
    p.push(&table.find("SRNM"));

    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.totalUops(), 3u);
    EXPECT_EQ(p.branchCount(), 1u);
    EXPECT_EQ(p.prefetchCount(), 0u);
    EXPECT_GT(p.totalEnergy(), 0.0);
    EXPECT_EQ(p.totalBytes(), 6u + 6u + 4u);
    EXPECT_EQ(p.toString(), "CIB CHHSI SRNM");
}

TEST(ProgramTest, PushRepeated)
{
    const auto &table = vn::instrTable();
    auto p = vn::makeRepeatedProgram(&table.find("SRNM"), 4000);
    EXPECT_EQ(p.size(), 4000u);
    EXPECT_EQ(p[0]->mnemonic, "SRNM");
    EXPECT_EQ(p[3999]->mnemonic, "SRNM");
}

TEST(ProgramTest, Append)
{
    const auto &table = vn::instrTable();
    vn::Program high, low;
    high.pushRepeated(&table.find("CIB"), 3);
    low.pushRepeated(&table.find("SRNM"), 2);
    vn::Program combined;
    combined.append(high);
    combined.append(low);
    EXPECT_EQ(combined.size(), 5u);
    EXPECT_EQ(combined[0]->mnemonic, "CIB");
    EXPECT_EQ(combined[4]->mnemonic, "SRNM");
}

TEST(ProgramTest, EmptyProgram)
{
    vn::Program p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.totalUops(), 0u);
    EXPECT_EQ(p.totalEnergy(), 0.0);
    EXPECT_EQ(p.toString(), "");
}

} // namespace
