/**
 * @file
 * Chip co-simulation tests: idle behaviour, noise generation,
 * synchronization effects, process variation and Vmin experiments.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "chip/chip.hh"
#include "chip/vmin.hh"
#include "util/logging.hh"

namespace
{

constexpr double kHighPower = 3.46;  // max-power sequence, model units
constexpr double kLowPower = 1.874;  // min-power sequence

vn::CoreActivity
squareWave(double freq_hz, bool sync, uint64_t offset_ticks = 0)
{
    // 500 consecutive deltaI events per synchronization, as the paper's
    // stressmarks do (1000 events per 4 ms sync in section V-B).
    std::vector<vn::ActivityPhase> loop;
    for (int i = 0; i < 500; ++i) {
        loop.push_back({kHighPower, 0.5 / freq_hz});
        loop.push_back({kLowPower, 0.5 / freq_hz});
    }
    std::optional<vn::SyncSpec> s;
    if (sync)
        s = vn::SyncSpec{64000, offset_ticks, kLowPower};
    return vn::CoreActivity(loop, s);
}

std::array<vn::CoreActivity, vn::kNumCores>
allCores(const vn::CoreActivity &a)
{
    return {a, a, a, a, a, a};
}

TEST(ChipModelTest, IdleChipIsQuiet)
{
    vn::ChipModel chip;
    auto r = chip.run(allCores(chip.idleActivity()), 10e-6);
    EXPECT_FALSE(r.failed);
    EXPECT_LT(r.maxP2p(), 2.0);
    for (const auto &c : r.core) {
        EXPECT_GT(c.v_min, 0.99);
        EXPECT_LT(c.v_max, chip.supplyVoltage() + 1e-6);
    }
}

TEST(ChipModelTest, IdlePowerPlausible)
{
    // Six idle cores (static only) plus nest/MCU/GX background: the
    // input-rail power sits near 200 W for the default calibration.
    vn::ChipModel chip;
    auto r = chip.run(allCores(chip.idleActivity()), 5e-6);
    EXPECT_GT(r.avg_power_watts, 120.0);
    EXPECT_LT(r.avg_power_watts, 320.0);
}

TEST(ChipModelTest, StressmarkGeneratesNoise)
{
    vn::ChipModel chip;
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 40e-6);
    EXPECT_GT(r.maxP2p(), 30.0);
    double vmin = 10.0;
    for (const auto &c : r.core)
        vmin = std::min(vmin, c.v_min);
    EXPECT_LT(vmin, 0.95);
}

TEST(ChipModelTest, SyncNoisierThanStaggered)
{
    // Perfectly aligned square waves beat deliberately spread ones:
    // the headline alignment result (Fig. 9 / Fig. 10).
    vn::ChipModel chip;
    auto synced = chip.run(allCores(squareWave(2.6e6, true)), 40e-6);

    std::array<vn::CoreActivity, vn::kNumCores> staggered = {
        squareWave(2.6e6, true, 0), squareWave(2.6e6, true, 1),
        squareWave(2.6e6, true, 2), squareWave(2.6e6, true, 3),
        squareWave(2.6e6, true, 4), squareWave(2.6e6, true, 5)};
    auto spread = chip.run(staggered, 40e-6);

    EXPECT_GT(synced.maxP2p(), spread.maxP2p() + 5.0);
}

TEST(ChipModelTest, ResonantStimulusNoisierThanOffResonance)
{
    // Single-core (others idle) so the sync bonus doesn't mask the
    // resonance; compare the die band against a high frequency.
    vn::ChipModel chip;
    std::array<vn::CoreActivity, vn::kNumCores> res = allCores(
        chip.idleActivity());
    res[0] = squareWave(2.6e6, false);
    auto at_res = chip.run(res, 40e-6);

    std::array<vn::CoreActivity, vn::kNumCores> off = allCores(
        chip.idleActivity());
    off[0] = squareWave(20e6, false);
    auto off_res = chip.run(off, 40e-6);

    EXPECT_GT(at_res.core[0].p2p, off_res.core[0].p2p);
}

TEST(ChipModelTest, MoreCoresMoreNoise)
{
    vn::ChipModel chip;
    auto one = allCores(chip.idleActivity());
    one[0] = squareWave(2.6e6, true);
    auto r1 = chip.run(one, 40e-6);

    auto all = allCores(squareWave(2.6e6, true));
    auto r6 = chip.run(all, 40e-6);

    EXPECT_GT(r6.maxP2p(), r1.maxP2p() + 10.0);
}

TEST(ChipModelTest, NoiseReachesIdleCores)
{
    // Noise propagates across the shared PDN: an idle core still reads
    // noise when its neighbours run stressmarks.
    vn::ChipModel chip;
    auto w = allCores(squareWave(2.6e6, true));
    w[3] = chip.idleActivity();
    auto r = chip.run(w, 40e-6);
    EXPECT_GT(r.core[3].p2p, 10.0);
}

TEST(ChipModelTest, TraceCaptureWorks)
{
    vn::ChipModel chip;
    vn::RunOptions options;
    options.capture_traces = true;
    options.trace_decimation = 2;
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 5e-6, options);
    ASSERT_EQ(r.traces.size(), static_cast<size_t>(vn::kNumCores));
    EXPECT_GT(r.traces[0].size(), 1000u);
    EXPECT_NEAR(r.traces[0].dt(), 2e-9, 1e-15);
    EXPECT_GT(r.traces[0].peakToPeak(), 0.01);
}

TEST(ChipModelTest, BiasShiftsOperatingPoint)
{
    vn::ChipConfig config;
    config.bias = 0.05;
    vn::ChipModel biased(config);
    vn::ChipModel nominal;
    EXPECT_NEAR(biased.supplyVoltage(),
                nominal.supplyVoltage() * 0.95, 1e-9);

    auto r = biased.run(allCores(biased.idleActivity()), 5e-6);
    EXPECT_LT(r.core[0].v_mean, 1.01);
}

TEST(ChipModelTest, DeepBiasFailsUnderStress)
{
    vn::ChipConfig config;
    config.bias = 0.10;
    vn::ChipModel chip(config);
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 40e-6);
    EXPECT_TRUE(r.failed);
    EXPECT_GE(r.failing_core, 0);
    EXPECT_GT(r.failure_time, 0.0);
}

TEST(ChipModelTest, StopOnFailureShortens)
{
    vn::ChipConfig config;
    config.bias = 0.10;
    vn::ChipModel chip(config);
    vn::RunOptions options;
    options.stop_on_failure = true;
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 400e-6, options);
    EXPECT_TRUE(r.failed);
}

TEST(ChipModelTest, VariationMakesCoresDiffer)
{
    // The discretized %p2p may land on the same latch step for all
    // cores, but the underlying voltage extremes differ with the
    // default process-variation profile.
    vn::ChipModel chip;
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 40e-6);
    double lo = 1e9, hi = 0.0;
    for (const auto &c : r.core) {
        lo = std::min(lo, c.v_min);
        hi = std::max(hi, c.v_min);
    }
    EXPECT_GT(hi - lo, 1e-4); // at least 0.1 mV spread across cores
}

TEST(ChipModelTest, UniformProfileMirrorSymmetry)
{
    // With no process variation, mirrored cores (0/1, 2/3, 4/5) read
    // identical noise under identical workloads.
    vn::ChipConfig config;
    config.variation = vn::VariationProfile::uniform();
    vn::ChipModel chip(config);
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 20e-6);
    EXPECT_NEAR(r.core[0].p2p, r.core[1].p2p, 1e-9);
    EXPECT_NEAR(r.core[2].p2p, r.core[3].p2p, 1e-9);
    EXPECT_NEAR(r.core[4].p2p, r.core[5].p2p, 1e-9);
}

TEST(VminTest, StressMarginSmallerThanIdleMargin)
{
    // The Vmin experiment: noisy workloads fail at a smaller undervolt
    // than idle (the entire premise of margin provisioning).
    vn::ChipConfig config;
    vn::VminExperiment vmin(config, 0.01, 0.2); // 1% steps for speed

    auto idle = vn::ChipModel(config).idleActivity();
    auto idle_result = vmin.run({idle, idle, idle, idle, idle, idle},
                                4e-6);

    auto stress = squareWave(2.6e6, true);
    auto stress_result = vmin.run(
        {stress, stress, stress, stress, stress, stress}, 20e-6);

    EXPECT_TRUE(idle_result.failed);
    EXPECT_TRUE(stress_result.failed);
    EXPECT_LT(stress_result.bias_at_failure,
              idle_result.bias_at_failure);
    // Sync stressmarks leave almost no margin (paper Fig. 12: 0-2%).
    EXPECT_LE(stress_result.bias_at_failure, 0.03);
    // Idle margin close to the full provisioned margin.
    EXPECT_GE(idle_result.bias_at_failure, 0.08);
}

TEST(VminTest, StepCountReported)
{
    vn::ChipConfig config;
    vn::VminExperiment vmin(config, 0.02, 0.2);
    auto idle = vn::ChipModel(config).idleActivity();
    auto r = vmin.run({idle, idle, idle, idle, idle, idle}, 2e-6);
    EXPECT_TRUE(r.failed);
    EXPECT_GE(r.steps, 2);
    EXPECT_NEAR(r.bias_at_failure,
                0.02 * static_cast<double>(r.steps - 1), 1e-12);
}

TEST(ChipModelTest, SharedUnitSkittersReadNoise)
{
    // Paper Fig. 3: the nest, MCU and GX carry skitters too. Under an
    // all-core stressmark the nest (sitting on the big L3 decap, fed
    // through damping bridges) reads noise, but less than the worst
    // core.
    vn::ChipModel chip;
    auto r = chip.run(allCores(squareWave(2.6e6, true)), 30e-6);
    for (int u = 0; u < vn::kNumSharedUnits; ++u) {
        EXPECT_GT(r.shared[u].p2p, 2.0) << vn::sharedUnitName(u);
        EXPECT_LT(r.shared[u].v_min, chip.supplyVoltage());
    }
    // The nest is damped: discretized %p2p may tie with the cores, but
    // its deepest droop is strictly shallower than the worst core's.
    EXPECT_LE(r.shared[0].p2p, r.maxP2p());
    double worst_core_vmin = 10.0;
    for (const auto &c : r.core)
        worst_core_vmin = std::min(worst_core_vmin, c.v_min);
    EXPECT_GT(r.shared[0].v_min, worst_core_vmin);
}

TEST(ChipModelTest, SharedUnitNames)
{
    EXPECT_STREQ(vn::sharedUnitName(0), "nest");
    EXPECT_STREQ(vn::sharedUnitName(1), "mcu");
    EXPECT_STREQ(vn::sharedUnitName(2), "gx");
}

TEST(ChipModelTest, InvalidConfigIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::ChipConfig bad;
    bad.bias = 0.5;
    EXPECT_THROW(vn::ChipModel{bad}, vn::FatalError);
    vn::ChipConfig bad2;
    bad2.dt = 0.0;
    EXPECT_THROW(vn::ChipModel{bad2}, vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
