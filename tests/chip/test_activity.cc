/**
 * @file
 * Core activity schedule tests.
 */

#include <gtest/gtest.h>

#include "chip/activity.hh"
#include "chip/tod.hh"
#include "util/logging.hh"

namespace
{

TEST(CoreActivityTest, ConstantPower)
{
    auto a = vn::CoreActivity::constant(1.86);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.advance(1e-9), 1.86);
}

TEST(CoreActivityTest, SquareWaveAverages)
{
    // 10 ns high / 10 ns low square: full periods average to the mean.
    vn::CoreActivity a({{3.0, 10e-9}, {1.0, 10e-9}});
    double energy = 0.0;
    for (int i = 0; i < 100; ++i)
        energy += a.advance(1e-9) * 1e-9;
    EXPECT_NEAR(energy / 100e-9, 2.0, 1e-9);
}

TEST(CoreActivityTest, PhaseBoundariesRespected)
{
    vn::CoreActivity a({{3.0, 10e-9}, {1.0, 30e-9}});
    // First 10 ns at 3.0 (tolerance for boundary-step blending).
    for (int i = 0; i < 10; ++i)
        EXPECT_NEAR(a.advance(1e-9), 3.0, 1e-3) << i;
    // Next 30 ns at 1.0.
    for (int i = 0; i < 30; ++i)
        EXPECT_NEAR(a.advance(1e-9), 1.0, 1e-3) << i;
    // Loop wraps.
    EXPECT_NEAR(a.advance(1e-9), 3.0, 1e-3);
}

TEST(CoreActivityTest, SubPhaseStepsAverageAcrossBoundary)
{
    // One 4 ns step spanning 2 ns of power 3 and 2 ns of power 1.
    vn::CoreActivity a({{3.0, 2e-9}, {1.0, 2e-9}});
    EXPECT_NEAR(a.advance(4e-9), 2.0, 1e-12);
}

TEST(CoreActivityTest, SyncWaitsForTodBoundary)
{
    // Interval of 16 ticks = 1 us; spin power 0.5 until the boundary.
    vn::SyncSpec sync{16, 0, 0.5};
    vn::CoreActivity a({{3.0, 50e-9}}, sync);
    // Starts waiting... at t=0 the TOD matches (tick 0 % 16 == 0), so
    // it runs immediately.
    EXPECT_DOUBLE_EQ(a.advance(1e-9), 3.0);
}

TEST(CoreActivityTest, SyncWithOffsetSpinsFirst)
{
    vn::SyncSpec sync{16, 4, 0.5}; // waits until t = 4 * 62.5 ns = 250 ns
    vn::CoreActivity a({{3.0, 50e-9}}, sync);
    double spin_time = 0.0;
    double t = 0.0;
    while (t < 249e-9) {
        EXPECT_DOUBLE_EQ(a.advance(1e-9), 0.5) << "t=" << t;
        spin_time += 1e-9;
        t += 1e-9;
    }
    a.advance(1e-9);
    EXPECT_DOUBLE_EQ(a.advance(1e-9), 3.0);
}

TEST(CoreActivityTest, ResyncAfterLoopCompletes)
{
    // Loop shorter than the interval: after the loop body the activity
    // spins until the next boundary.
    vn::SyncSpec sync{16, 0, 0.25}; // 1 us interval
    vn::CoreActivity a({{3.0, 100e-9}}, sync);
    // Runs 100 ns of work...
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(a.advance(1e-9), 3.0, 1e-3);
    // ...then spins 900 ns until t = 1 us.
    for (int i = 0; i < 900; ++i)
        EXPECT_NEAR(a.advance(1e-9), 0.25, 1e-3) << i;
    EXPECT_NEAR(a.advance(1e-9), 3.0, 1e-3);
}

TEST(CoreActivityTest, PrologueRunsOnce)
{
    vn::CoreActivity a({{3.0, 10e-9}},
                       std::nullopt,
                       {{1.0, 5e-9}});
    for (int i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(a.advance(1e-9), 1.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.advance(1e-9), 3.0);
    // Loop wraps straight back to the loop, not the prologue.
    EXPECT_DOUBLE_EQ(a.advance(1e-9), 3.0);
}

TEST(CoreActivityTest, CurrentPowerReflectsState)
{
    vn::CoreActivity a({{3.0, 10e-9}}, std::nullopt, {{1.5, 5e-9}});
    EXPECT_DOUBLE_EQ(a.currentPower(), 1.5);
    a.advance(5e-9);
    EXPECT_DOUBLE_EQ(a.currentPower(), 3.0);
}

TEST(CoreActivityTest, TimeAdvances)
{
    auto a = vn::CoreActivity::constant(1.0);
    a.advance(3e-9);
    a.advance(2e-9);
    EXPECT_NEAR(a.time(), 5e-9, 1e-18);
}

TEST(CoreActivityTest, InvalidConstructionIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::CoreActivity({}), vn::FatalError);
    EXPECT_THROW(vn::CoreActivity({{1.0, 0.0}}), vn::FatalError);
    EXPECT_THROW(vn::CoreActivity({{1.0, 1e-9}}, vn::SyncSpec{0, 0, 0.5}),
                 vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
