/**
 * @file
 * KeyValueFile and ChipConfig persistence tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "chip/configio.hh"
#include "util/kvfile.hh"
#include "util/logging.hh"

namespace
{

/** Temp file helper removed on scope exit. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_("vnoise_test_" + name)
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(KeyValueFileTest, RoundTrip)
{
    TempFile tmp("kv_roundtrip.cfg");
    vn::KeyValueFile kv;
    kv.set("a.b", 1.5);
    kv.set("c", -2e-9);
    kv.save(tmp.path(), "test header");

    auto loaded = vn::KeyValueFile::load(tmp.path());
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.require("a.b"), 1.5);
    EXPECT_DOUBLE_EQ(loaded.require("c"), -2e-9);
}

TEST(KeyValueFileTest, CommentsAndBlanksIgnored)
{
    TempFile tmp("kv_comments.cfg");
    {
        std::ofstream ofs(tmp.path());
        ofs << "# full comment line\n\n  x = 3 # trailing comment\n";
    }
    auto kv = vn::KeyValueFile::load(tmp.path());
    EXPECT_EQ(kv.size(), 1u);
    EXPECT_DOUBLE_EQ(kv.require("x"), 3.0);
}

TEST(KeyValueFileTest, GetWithFallback)
{
    vn::KeyValueFile kv;
    kv.set("present", 7.0);
    EXPECT_DOUBLE_EQ(kv.get("present", 1.0), 7.0);
    EXPECT_DOUBLE_EQ(kv.get("absent", 1.0), 1.0);
    EXPECT_TRUE(kv.has("present"));
    EXPECT_FALSE(kv.has("absent"));
}

TEST(KeyValueFileTest, MalformedLinesAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    TempFile tmp("kv_bad.cfg");
    {
        std::ofstream ofs(tmp.path());
        ofs << "not a pair\n";
    }
    EXPECT_THROW(vn::KeyValueFile::load(tmp.path()), vn::FatalError);
    {
        std::ofstream ofs(tmp.path());
        ofs << "x = not_a_number\n";
    }
    EXPECT_THROW(vn::KeyValueFile::load(tmp.path()), vn::FatalError);
    EXPECT_THROW(vn::KeyValueFile::load("no_such_file.cfg"),
                 vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(ConfigIoTest, FullRoundTrip)
{
    TempFile tmp("chip_roundtrip.cfg");
    vn::ChipConfig original;
    original.pdn.c_l3 = 12.5e-6;
    original.power_unit_amps = 17.0;
    original.skitter.gain = 2.75;
    original.critpath.nominal_path_fraction = 0.66;
    original.core.rob_size = 48;
    original.variation.core[2].power_scale = 1.111;

    vn::saveChipConfig(original, tmp.path());
    auto loaded = vn::loadChipConfig(tmp.path());

    EXPECT_DOUBLE_EQ(loaded.pdn.c_l3, 12.5e-6);
    EXPECT_DOUBLE_EQ(loaded.power_unit_amps, 17.0);
    EXPECT_DOUBLE_EQ(loaded.skitter.gain, 2.75);
    EXPECT_DOUBLE_EQ(loaded.critpath.nominal_path_fraction, 0.66);
    EXPECT_EQ(loaded.core.rob_size, 48);
    EXPECT_DOUBLE_EQ(loaded.variation.core[2].power_scale, 1.111);
    // Untouched defaults survive.
    EXPECT_DOUBLE_EQ(loaded.pdn.r_rail, vn::PdnConfig{}.r_rail);
}

TEST(ConfigIoTest, PartialFileOverridesOnlyListedKeys)
{
    TempFile tmp("chip_partial.cfg");
    {
        std::ofstream ofs(tmp.path());
        ofs << "pdn.c_l3 = 4e-6\n";
    }
    auto loaded = vn::loadChipConfig(tmp.path());
    EXPECT_DOUBLE_EQ(loaded.pdn.c_l3, 4e-6);
    EXPECT_DOUBLE_EQ(loaded.pdn.vnom, vn::PdnConfig{}.vnom);
    EXPECT_DOUBLE_EQ(loaded.power_unit_amps,
                     vn::ChipConfig{}.power_unit_amps);
}

TEST(ConfigIoTest, LoadedConfigBuildsAWorkingChip)
{
    TempFile tmp("chip_usable.cfg");
    vn::ChipConfig original;
    original.bias = 0.02;
    vn::saveChipConfig(original, tmp.path());
    auto loaded = vn::loadChipConfig(tmp.path());
    vn::ChipModel chip(loaded);
    EXPECT_NEAR(chip.supplyVoltage(), 1.05 * 0.98, 1e-9);
    auto r = chip.run({chip.idleActivity(), chip.idleActivity(),
                       chip.idleActivity(), chip.idleActivity(),
                       chip.idleActivity(), chip.idleActivity()},
                      2e-6);
    EXPECT_FALSE(r.failed);
}

} // namespace
