/**
 * @file
 * TOD clock synchronization facility tests.
 */

#include <gtest/gtest.h>

#include "chip/tod.hh"
#include "util/logging.hh"

namespace
{

TEST(TodClockTest, TickConversion)
{
    EXPECT_EQ(vn::TodClock::ticksAt(0.0), 0u);
    EXPECT_EQ(vn::TodClock::ticksAt(62.5e-9), 1u);
    EXPECT_EQ(vn::TodClock::ticksAt(1e-6), 16u);
    EXPECT_DOUBLE_EQ(vn::TodClock::timeOf(16), 1e-6);
}

TEST(TodClockTest, FourMillisecondSyncInterval)
{
    // The paper's stressmarks re-sync every 4 ms: 64000 ticks.
    EXPECT_EQ(vn::TodClock::ticksAt(4e-3), 64000u);
}

TEST(TodClockTest, NextSyncAtOrAfterNow)
{
    for (double t : {0.0, 1e-7, 3.9e-3, 4.01e-3, 1.2345e-2}) {
        double s = vn::TodClock::nextSync(t, 64000, 0);
        EXPECT_GE(s, t);
        EXPECT_EQ(vn::TodClock::ticksAt(s) % 64000, 0u);
    }
}

TEST(TodClockTest, OffsetShiftsSyncPoint)
{
    double base = vn::TodClock::nextSync(1e-3, 64000, 0);
    double offset = vn::TodClock::nextSync(1e-3, 64000, 3);
    EXPECT_NEAR(offset - base, 3 * vn::TodClock::tick_seconds, 1e-15);
}

TEST(TodClockTest, MisalignmentGranularityIs62p5ns)
{
    // Adjacent offsets differ by exactly one tick: the paper's
    // misalignment control (Fig. 10).
    double a = vn::TodClock::nextSync(0.0, 64000, 4);
    double b = vn::TodClock::nextSync(0.0, 64000, 5);
    EXPECT_NEAR(b - a, 62.5e-9, 1e-15);
}

TEST(TodClockTest, AlreadyAtSyncPointStaysPut)
{
    double t = vn::TodClock::timeOf(128000);
    EXPECT_DOUBLE_EQ(vn::TodClock::nextSync(t, 64000, 0), t);
}

TEST(TodClockTest, OffsetWrapsModuloInterval)
{
    double a = vn::TodClock::nextSync(0.0, 100, 5);
    double b = vn::TodClock::nextSync(0.0, 100, 105);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(TodClockTest, ZeroIntervalIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::TodClock::nextSync(0.0, 0, 0), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
