/**
 * @file
 * Tests for netlist construction and validation.
 */

#include <gtest/gtest.h>

#include "circuit/netlist.hh"
#include "util/logging.hh"

namespace
{

TEST(NetlistTest, GroundExistsByDefault)
{
    vn::Netlist net;
    EXPECT_EQ(net.nodeCount(), 1u);
    EXPECT_EQ(net.nodeName(vn::Netlist::ground), "gnd");
}

TEST(NetlistTest, AddNodesAndLookup)
{
    vn::Netlist net;
    vn::NodeId a = net.addNode("rail");
    vn::NodeId b = net.addNode("core");
    EXPECT_EQ(net.nodeCount(), 3u);
    EXPECT_EQ(net.node("rail"), a);
    EXPECT_EQ(net.node("core"), b);
    EXPECT_EQ(net.nodeName(b), "core");
}

TEST(NetlistTest, UnknownNodeNameIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::Netlist net;
    EXPECT_THROW(net.node("nope"), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(NetlistTest, ElementsRecorded)
{
    vn::Netlist net;
    vn::NodeId a = net.addNode("a");
    vn::NodeId b = net.addNode("b");
    net.addResistor(a, b, 5.0, "r1");
    net.addInductor(a, b, 1e-9, "l1");
    net.addCapacitor(b, vn::Netlist::ground, 1e-6, "c1");
    net.addVoltageSource(a, vn::Netlist::ground, 1.0, "v1");
    vn::PortId p = net.addCurrentPort(b, vn::Netlist::ground, "load");

    EXPECT_EQ(net.resistors().size(), 1u);
    EXPECT_EQ(net.inductors().size(), 1u);
    EXPECT_EQ(net.capacitors().size(), 1u);
    EXPECT_EQ(net.voltageSources().size(), 1u);
    ASSERT_EQ(net.ports().size(), 1u);
    EXPECT_EQ(net.port("load"), p);
    EXPECT_EQ(net.resistors()[0].ohms, 5.0);
}

TEST(NetlistTest, RejectsNonPositiveValues)
{
    bool prev = vn::setThrowOnError(true);
    vn::Netlist net;
    vn::NodeId a = net.addNode("a");
    EXPECT_THROW(net.addResistor(a, vn::Netlist::ground, 0.0),
                 vn::FatalError);
    EXPECT_THROW(net.addResistor(a, vn::Netlist::ground, -1.0),
                 vn::FatalError);
    EXPECT_THROW(net.addInductor(a, vn::Netlist::ground, 0.0),
                 vn::FatalError);
    EXPECT_THROW(net.addCapacitor(a, vn::Netlist::ground, -2.0),
                 vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(NetlistTest, RejectsSelfLoops)
{
    bool prev = vn::setThrowOnError(true);
    vn::Netlist net;
    vn::NodeId a = net.addNode("a");
    EXPECT_THROW(net.addResistor(a, a, 1.0), vn::FatalError);
    EXPECT_THROW(net.addCurrentPort(a, a), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(NetlistTest, RejectsUnknownNodeIds)
{
    bool prev = vn::setThrowOnError(true);
    vn::Netlist net;
    vn::NodeId a = net.addNode("a");
    EXPECT_THROW(net.addResistor(a, 99, 1.0), vn::FatalError);
    EXPECT_THROW(net.addResistor(-1, a, 1.0), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
