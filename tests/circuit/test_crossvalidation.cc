/**
 * @file
 * Cross-validation of the two circuit solvers on randomly generated
 * RLC networks: the steady-state sinusoidal response measured with the
 * transient solver must match the AC analysis prediction. This guards
 * both solvers against consistent-looking-but-wrong stamping.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/ac.hh"
#include "circuit/netlist.hh"
#include "circuit/transient.hh"
#include "util/rng.hh"

namespace
{

/** Random ladder-ish RLC network with a source and a load port. */
struct RandomNetwork
{
    vn::Netlist net;
    vn::NodeId observe;
    vn::PortId load;

    explicit RandomNetwork(uint64_t seed)
    {
        vn::Rng rng(seed);
        vn::NodeId src = net.addNode("src");
        net.addVoltageSource(src, vn::Netlist::ground, 1.0);

        // 3-5 ladder stages of R + optional L, each with a decap.
        int stages = 3 + static_cast<int>(rng.below(3));
        vn::NodeId prev = src;
        for (int s = 0; s < stages; ++s) {
            vn::NodeId node = net.addNode("n" + std::to_string(s));
            double r = std::pow(10.0, rng.uniform(-4.0, -2.0));
            net.addResistor(prev, node, r);
            if (rng.uniform() < 0.7) {
                vn::NodeId mid = net.addNode("m" + std::to_string(s));
                double l = std::pow(10.0, rng.uniform(-11.0, -8.5));
                net.addInductor(node, mid, l);
                node = mid;
            }
            double c = std::pow(10.0, rng.uniform(-8.0, -5.0));
            double esr = std::pow(10.0, rng.uniform(-4.0, -3.0));
            vn::NodeId cap = net.addNode("c" + std::to_string(s));
            net.addResistor(node, cap, esr);
            net.addCapacitor(cap, vn::Netlist::ground, c);
            prev = node;
        }
        observe = prev;
        load = net.addCurrentPort(observe, vn::Netlist::ground);
    }
};

/** Steady-state amplitude of the node response to a sine load. */
double
transientSineAmplitude(RandomNetwork &network, double freq, double amps)
{
    double period = 1.0 / freq;
    double dt = period / 400.0;
    vn::TransientSolver sim(network.net, dt);
    std::vector<double> load(1, 0.0);
    sim.initDcOperatingPoint(load);

    // Settle for many periods (covers the network's own time
    // constants), then record extremes over whole periods.
    double settle = 60.0 * period;
    double v_ref = 0.0;
    {
        // DC level with zero load for the amplitude reference.
        v_ref = sim.nodeVoltage(network.observe);
    }
    double lo = 1e9, hi = -1e9;
    double t_end = settle + 8.0 * period;
    while (sim.time() < t_end) {
        load[0] = amps * 0.5 *
                  (1.0 + std::sin(2.0 * M_PI * freq * sim.time()));
        sim.step(load);
        if (sim.time() >= settle) {
            double v = sim.nodeVoltage(network.observe);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    (void)v_ref;
    // The sinusoidal component has p2p = 2 * |Z| * (amps/2).
    return (hi - lo) / 2.0;
}

class SolverCrossValidation : public ::testing::TestWithParam<int>
{};

TEST_P(SolverCrossValidation, TransientMatchesAcOnRandomNetwork)
{
    RandomNetwork network(1000 + static_cast<uint64_t>(GetParam()));
    vn::Rng rng(77 + static_cast<uint64_t>(GetParam()));
    double freq = std::pow(10.0, rng.uniform(4.5, 7.0));
    const double amps = 1.0;

    vn::AcAnalysis ac(network.net);
    double z_mag = std::abs(ac.impedance(network.load, freq));
    double expected_amplitude = z_mag * amps / 2.0;

    double measured = transientSineAmplitude(network, freq, amps);
    EXPECT_NEAR(measured, expected_amplitude,
                0.05 * expected_amplitude + 1e-9)
        << "f=" << freq;
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, SolverCrossValidation,
                         ::testing::Range(0, 10));

} // namespace
