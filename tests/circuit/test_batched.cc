/**
 * @file
 * Bit-identity and sharing tests of the batched solver path.
 *
 * The whole campaign-batching design rests on one claim: a lane of
 * BatchedTransientSolver executes exactly the scalar TransientSolver
 * operation sequence, so batched results are byte-identical to scalar
 * ones and the two paths can share cache entries. These tests enforce
 * the claim byte-for-byte (memcmp on doubles, never EXPECT_NEAR) over
 * long transients, on every netlist the chip model builds, and at the
 * ChipModel::runBatch level including stop_on_failure.
 *
 * FactorizationCacheTest.ConcurrentGetInternsOnePointer doubles as the
 * ThreadSanitizer target for the cache's locking (scripts/check.sh
 * runs it under the tsan preset).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "chip/chip.hh"
#include "circuit/batched.hh"
#include "circuit/factorization.hh"
#include "circuit/netlist.hh"
#include "circuit/transient.hh"
#include "util/logging.hh"

namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/** Deterministic per-lane stimulus, different for every (lane, port, step). */
double
stimulus(size_t lane, size_t port, uint64_t step)
{
    double base = 1.0 + 0.37 * static_cast<double>(lane) +
                  0.11 * static_cast<double>(port);
    // A square-ish wave with lane-dependent period keeps every lane on
    // a different trajectory.
    uint64_t period = 7 + 3 * lane + port;
    return (step / period) % 2 == 0 ? base : 0.25 * base;
}

/** RLC ladder with two ports, a vsource, and reactive state. */
vn::Netlist
makeLadder()
{
    vn::Netlist net;
    vn::NodeId n1 = net.addNode("n1");
    vn::NodeId n2 = net.addNode("n2");
    vn::NodeId n3 = net.addNode("n3");
    net.addVoltageSource(n1, vn::Netlist::ground, 1.1);
    net.addResistor(n1, n2, 0.01);
    net.addInductor(n2, n3, 5e-9);
    net.addCapacitor(n2, vn::Netlist::ground, 1e-6);
    net.addCapacitor(n3, vn::Netlist::ground, 4e-6);
    net.addResistor(n3, vn::Netlist::ground, 50.0);
    net.addCurrentPort(n2, vn::Netlist::ground, "p2");
    net.addCurrentPort(n3, vn::Netlist::ground, "p3");
    return net;
}

/**
 * Drive `lanes` scalar solvers and one batched solver with identical
 * per-lane stimuli for `steps` steps and require byte-identical state
 * at every observation point.
 */
void
expectLanesMatchScalar(const vn::Netlist &net, double dt, size_t lanes,
                       uint64_t steps)
{
    const size_t ports = net.ports().size();

    std::vector<vn::TransientSolver> scalar;
    scalar.reserve(lanes);
    for (size_t k = 0; k < lanes; ++k)
        scalar.emplace_back(net, dt);
    vn::BatchedTransientSolver batched(net, dt, lanes);

    // All solvers share one interned factorization.
    for (size_t k = 0; k < lanes; ++k)
        ASSERT_EQ(scalar[k].factorization().get(),
                  batched.factorization().get());

    std::vector<double> lane_load(ports * lanes);
    std::vector<std::vector<double>> loads(lanes,
                                           std::vector<double>(ports));
    auto fill = [&](uint64_t step) {
        for (size_t k = 0; k < lanes; ++k) {
            for (size_t p = 0; p < ports; ++p) {
                loads[k][p] = stimulus(k, p, step);
                lane_load[k * ports + p] = loads[k][p];
            }
        }
    };

    fill(0);
    for (size_t k = 0; k < lanes; ++k)
        scalar[k].initDcOperatingPoint(loads[k]);
    batched.initDcOperatingPoint(lane_load);

    auto check = [&](uint64_t step) {
        for (size_t k = 0; k < lanes; ++k) {
            for (vn::NodeId n = 1;
                 n < static_cast<vn::NodeId>(net.nodeCount()); ++n) {
                ASSERT_TRUE(sameBits(scalar[k].nodeVoltage(n),
                                     batched.nodeVoltage(k, n)))
                    << "lane " << k << " node " << n << " step " << step;
            }
            for (size_t i = 0; i < net.inductors().size(); ++i) {
                ASSERT_TRUE(sameBits(scalar[k].inductorCurrent(i),
                                     batched.inductorCurrent(k, i)))
                    << "lane " << k << " inductor " << i << " step "
                    << step;
            }
            for (size_t i = 0; i < net.voltageSources().size(); ++i) {
                ASSERT_TRUE(sameBits(scalar[k].sourceCurrent(i),
                                     batched.sourceCurrent(k, i)))
                    << "lane " << k << " vsource " << i << " step "
                    << step;
            }
        }
    };

    check(0);
    for (uint64_t s = 1; s <= steps; ++s) {
        fill(s);
        for (size_t k = 0; k < lanes; ++k)
            scalar[k].step(loads[k]);
        batched.step(lane_load);
        if (s % 97 == 0 || s == steps)
            check(s);
    }
}

TEST(BatchedBitIdentityTest, LadderLanesMatchScalarLongTransient)
{
    expectLanesMatchScalar(makeLadder(), 1e-9, 5, 5000);
}

TEST(BatchedBitIdentityTest, SingleLaneDegeneratesToScalar)
{
    expectLanesMatchScalar(makeLadder(), 2e-9, 1, 1500);
}

TEST(BatchedBitIdentityTest, EveryChipModelNetlistMatches)
{
    // Every netlist the chip model builds: default config, scaled PDN,
    // process variation, undervolt bias, and a coarser step.
    std::vector<vn::ChipConfig> configs(4);
    configs[1].pdn.rail_res_scale.fill(1.35);
    configs[1].pdn.decap_scale.fill(0.8);
    configs[2].variation =
        vn::VariationProfile::randomCorner(1234, 0.05);
    configs[2].bias = 0.04;
    configs[3].dt = 2e-9;

    for (size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        vn::ChipModel chip(configs[i]);
        expectLanesMatchScalar(chip.pdn().netlist, chip.config().dt, 4,
                               1200);
    }
}

std::array<vn::CoreActivity, vn::kNumCores>
waveWorkloads(const vn::ChipModel &chip, int variant)
{
    std::array<vn::CoreActivity, vn::kNumCores> w = {
        chip.idleActivity(), chip.idleActivity(), chip.idleActivity(),
        chip.idleActivity(), chip.idleActivity(), chip.idleActivity()};
    for (int c = 0; c < vn::kNumCores; ++c) {
        if ((c + variant) % 2 == 0) {
            double hi = 3.0 + 0.2 * variant + 0.1 * c;
            std::vector<vn::ActivityPhase> loop{
                {hi, 150e-9 + 10e-9 * static_cast<double>(variant)},
                {1.2, 250e-9}};
            w[c] = vn::CoreActivity(loop);
        }
    }
    return w;
}

void
expectSameChipResult(const vn::ChipRunResult &a,
                     const vn::ChipRunResult &b)
{
    auto same_core = [](const vn::CoreRunResult &x,
                        const vn::CoreRunResult &y) {
        return sameBits(x.p2p, y.p2p) && x.min_latch == y.min_latch &&
               x.max_latch == y.max_latch && sameBits(x.v_min, y.v_min) &&
               sameBits(x.v_max, y.v_max) && sameBits(x.v_mean, y.v_mean);
    };
    for (int c = 0; c < vn::kNumCores; ++c)
        ASSERT_TRUE(same_core(a.core[c], b.core[c])) << "core " << c;
    for (int u = 0; u < vn::kNumSharedUnits; ++u)
        ASSERT_TRUE(same_core(a.shared[u], b.shared[u])) << "unit " << u;
    ASSERT_EQ(a.failed, b.failed);
    ASSERT_TRUE(sameBits(a.failure_time, b.failure_time));
    ASSERT_EQ(a.failing_core, b.failing_core);
    ASSERT_TRUE(sameBits(a.avg_power_watts, b.avg_power_watts));
    ASSERT_TRUE(sameBits(a.duration, b.duration));
    ASSERT_EQ(a.traces.size(), b.traces.size());
    for (size_t t = 0; t < a.traces.size(); ++t) {
        ASSERT_EQ(a.traces[t].size(), b.traces[t].size()) << "trace " << t;
        for (size_t i = 0; i < a.traces[t].size(); ++i)
            ASSERT_TRUE(sameBits(a.traces[t][i], b.traces[t][i]))
                << "trace " << t << " sample " << i;
    }
}

TEST(BatchedBitIdentityTest, ChipRunBatchMatchesScalarRuns)
{
    vn::ChipModel chip;
    std::vector<std::array<vn::CoreActivity, vn::kNumCores>> workloads;
    for (int variant = 0; variant < 4; ++variant)
        workloads.push_back(waveWorkloads(chip, variant));

    vn::RunOptions options;
    options.capture_traces = true;
    options.trace_decimation = 3;

    auto batched = chip.runBatch(workloads, 2e-6, options);
    ASSERT_EQ(batched.size(), workloads.size());
    for (size_t i = 0; i < workloads.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        auto scalar = chip.run(workloads[i], 2e-6, options);
        expectSameChipResult(scalar, batched[i]);
    }
}

TEST(BatchedBitIdentityTest, RunBatchStopOnFailureFreezesPerLane)
{
    // Deep undervolt makes heavy lanes fail early while light lanes
    // survive; every lane must still match its scalar run bit-for-bit.
    vn::ChipConfig config;
    config.bias = 0.12;
    vn::ChipModel chip(config);

    std::vector<std::array<vn::CoreActivity, vn::kNumCores>> workloads;
    for (int variant = 0; variant < 3; ++variant)
        workloads.push_back(waveWorkloads(chip, variant));
    // One all-idle lane that must not fail.
    workloads.push_back({chip.idleActivity(), chip.idleActivity(),
                         chip.idleActivity(), chip.idleActivity(),
                         chip.idleActivity(), chip.idleActivity()});

    vn::RunOptions options;
    options.stop_on_failure = true;

    auto batched = chip.runBatch(workloads, 3e-6, options);
    ASSERT_EQ(batched.size(), workloads.size());
    bool any_failed = false;
    for (size_t i = 0; i < workloads.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        auto scalar = chip.run(workloads[i], 3e-6, options);
        expectSameChipResult(scalar, batched[i]);
        any_failed = any_failed || scalar.failed;
    }
    EXPECT_FALSE(batched.back().failed);
}

TEST(BatchedBitIdentityTest, EmptyBatchReturnsNothing)
{
    vn::ChipModel chip;
    EXPECT_TRUE(chip.runBatch({}, 1e-6).empty());
}

TEST(FactorizationCacheTest, SolversShareOneFactorization)
{
    vn::Netlist net = makeLadder();
    vn::TransientSolver a(net, 1e-9);
    vn::TransientSolver b(net, 1e-9);
    EXPECT_EQ(a.factorization().get(), b.factorization().get());

    vn::TransientSolver c(net, 2e-9); // different dt, different LU
    EXPECT_NE(a.factorization().get(), c.factorization().get());
}

TEST(FactorizationCacheTest, ContentHashIgnoresNames)
{
    vn::Netlist a = makeLadder();

    vn::Netlist b;
    vn::NodeId n1 = b.addNode("renamed1");
    vn::NodeId n2 = b.addNode("renamed2");
    vn::NodeId n3 = b.addNode("renamed3");
    b.addVoltageSource(n1, vn::Netlist::ground, 1.1, "vrm");
    b.addResistor(n1, n2, 0.01, "rpkg");
    b.addInductor(n2, n3, 5e-9, "lpkg");
    b.addCapacitor(n2, vn::Netlist::ground, 1e-6, "cbulk");
    b.addCapacitor(n3, vn::Netlist::ground, 4e-6, "cdie");
    b.addResistor(n3, vn::Netlist::ground, 50.0, "rleak");
    b.addCurrentPort(n2, vn::Netlist::ground, "load_a");
    b.addCurrentPort(n3, vn::Netlist::ground, "load_b");

    EXPECT_EQ(vn::netlistContentHash(a), vn::netlistContentHash(b));
    EXPECT_TRUE(vn::netlistContentEquals(a, b));

    // Same electrical content interns to the same factorization.
    vn::TransientSolver sa(a, 1e-9);
    vn::TransientSolver sb(b, 1e-9);
    EXPECT_EQ(sa.factorization().get(), sb.factorization().get());
}

TEST(FactorizationCacheTest, ContentHashSeesValueChanges)
{
    vn::Netlist a = makeLadder();
    vn::Netlist b = makeLadder();
    b.addCapacitor(b.node("n2"), vn::Netlist::ground, 2e-6);
    EXPECT_NE(vn::netlistContentHash(a), vn::netlistContentHash(b));
    EXPECT_FALSE(vn::netlistContentEquals(a, b));
}

TEST(FactorizationCacheTest, HitAndMissCountersTrack)
{
    auto &cache = vn::FactorizationCache::global();

    // A netlist no other test uses, so the first get must miss.
    vn::Netlist net;
    vn::NodeId n1 = net.addNode("counter_probe");
    net.addVoltageSource(n1, vn::Netlist::ground, 0.77125);
    net.addResistor(n1, vn::Netlist::ground, 3.25);
    net.addCapacitor(n1, vn::Netlist::ground, 7.5e-7);
    net.addCurrentPort(n1, vn::Netlist::ground);

    size_t hits = cache.hits();
    size_t misses = cache.misses();
    auto f1 = cache.get(net, 1e-9);
    EXPECT_EQ(cache.misses(), misses + 1);
    auto f2 = cache.get(net, 1e-9);
    EXPECT_EQ(cache.hits(), hits + 1);
    EXPECT_EQ(f1.get(), f2.get());
}

TEST(FactorizationCacheTest, ConcurrentGetInternsOnePointer)
{
    // tsan target: many threads race the first get() of a fresh
    // netlist; everyone must end up with one shared factorization and
    // no data race inside the cache.
    vn::Netlist net = makeLadder();
    net.addResistor(net.node("n2"), vn::Netlist::ground, 123.456);

    constexpr int kThreads = 8;
    std::array<std::shared_ptr<const vn::Factorization>, kThreads> got;
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                auto f =
                    vn::FactorizationCache::global().get(net, 1e-9);
                // Exercise the shared read-only state from every
                // thread, including the lazily built DC LU.
                vn::TransientSolver sim(f);
                std::vector<double> load(net.ports().size(), 0.1 * t);
                sim.initDcOperatingPoint(load);
                for (int s = 0; s < 50; ++s)
                    sim.step(load);
                got[static_cast<size_t>(t)] = std::move(f);
            });
        }
        for (auto &th : threads)
            th.join();
    }
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[0].get(), got[static_cast<size_t>(t)].get());
}

TEST(FactorizationTest, DcSingularFailsOnFirstDcUseNotConstruction)
{
    // A node reachable only through a capacitor has a singular DC
    // matrix but a fine transient one. The factorization is usable for
    // stepping; only the (lazy) DC LU must fail — the same timing the
    // eager per-run solver had.
    vn::Netlist net;
    vn::NodeId n1 = net.addNode("driven");
    vn::NodeId n2 = net.addNode("floating");
    net.addVoltageSource(n1, vn::Netlist::ground, 1.0);
    net.addCapacitor(n1, n2, 1e-6);
    net.addCurrentPort(n2, vn::Netlist::ground);

    bool prev = vn::setThrowOnError(true);
    vn::TransientSolver sim(net, 1e-9); // must not throw
    std::vector<double> load(1, 0.0);
    EXPECT_THROW(sim.initDcOperatingPoint(load), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(BatchedTransientSolverTest, RejectsBadArguments)
{
    bool prev = vn::setThrowOnError(true);
    vn::Netlist net = makeLadder();
    EXPECT_THROW(vn::BatchedTransientSolver(net, 1e-9, 0),
                 vn::FatalError);

    vn::BatchedTransientSolver sim(net, 1e-9, 2);
    std::vector<double> wrong(net.ports().size(), 0.0); // 1 lane only
    EXPECT_THROW(sim.step(wrong), vn::FatalError);
    EXPECT_THROW(sim.nodeVoltage(2, 1), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
