/**
 * @file
 * Tests for the waveform container.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "circuit/waveform.hh"
#include "util/logging.hh"

namespace
{

TEST(WaveformTest, TimingAndAccess)
{
    vn::Waveform w(0.5, 10.0);
    w.push(1.0);
    w.push(2.0);
    w.push(3.0);
    EXPECT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w.dt(), 0.5);
    EXPECT_DOUBLE_EQ(w.timeAt(0), 10.0);
    EXPECT_DOUBLE_EQ(w.timeAt(2), 11.0);
    EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(WaveformTest, StatsHelpers)
{
    vn::Waveform w(1.0);
    for (double x : {0.9, 1.1, 0.95, 1.05})
        w.push(x);
    EXPECT_DOUBLE_EQ(w.min(), 0.9);
    EXPECT_DOUBLE_EQ(w.max(), 1.1);
    EXPECT_NEAR(w.peakToPeak(), 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(w.mean(), 1.0);
}

TEST(WaveformTest, EmptyStatsAreZero)
{
    vn::Waveform w(1.0);
    EXPECT_EQ(w.peakToPeak(), 0.0);
    EXPECT_EQ(w.mean(), 0.0);
    EXPECT_TRUE(w.empty());
}

TEST(WaveformTest, SliceSelectsWindow)
{
    vn::Waveform w(1.0, 0.0);
    for (int i = 0; i < 10; ++i)
        w.push(static_cast<double>(i));
    auto s = w.slice(3.0, 6.0);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0], 3.0);
    EXPECT_DOUBLE_EQ(s[2], 5.0);
    EXPECT_DOUBLE_EQ(s.timeAt(0), 3.0);
}

TEST(WaveformTest, SliceClampsToRange)
{
    vn::Waveform w(1.0, 0.0);
    for (int i = 0; i < 4; ++i)
        w.push(static_cast<double>(i));
    auto s = w.slice(-5.0, 100.0);
    EXPECT_EQ(s.size(), 4u);
    auto e = w.slice(8.0, 9.0);
    EXPECT_TRUE(e.empty());
}


TEST(WaveformTest, CsvRoundTrip)
{
    vn::Waveform w(2e-9, 1e-6);
    for (int i = 0; i < 50; ++i)
        w.push(1.0 + 0.01 * i);
    const std::string path = "vnoise_test_waveform.csv";
    w.writeCsv(path, "v");

    auto loaded = vn::Waveform::readCsv(path);
    ASSERT_EQ(loaded.size(), w.size());
    EXPECT_NEAR(loaded.dt(), w.dt(), 1e-18);
    EXPECT_NEAR(loaded.startTime(), w.startTime(), 1e-15);
    for (size_t i = 0; i < w.size(); ++i)
        ASSERT_NEAR(loaded[i], w[i], 1e-12);
    std::remove(path.c_str());
}

TEST(WaveformTest, ReadCsvRejectsMalformed)
{
    bool prev = vn::setThrowOnError(true);
    const std::string path = "vnoise_test_bad.csv";
    {
        std::ofstream ofs(path);
        ofs << "time,v\nnot,numbers\n";
    }
    EXPECT_THROW(vn::Waveform::readCsv(path), vn::FatalError);
    {
        std::ofstream ofs(path);
        ofs << "time,v\n0,1\n1,1\n5,1\n"; // non-uniform
    }
    EXPECT_THROW(vn::Waveform::readCsv(path), vn::FatalError);
    EXPECT_THROW(vn::Waveform::readCsv("no_such.csv"), vn::FatalError);
    std::remove(path.c_str());
    vn::setThrowOnError(prev);
}

} // namespace
