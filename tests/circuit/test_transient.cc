/**
 * @file
 * Transient-solver validation against closed-form circuit responses.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/transient.hh"
#include "util/units.hh"

namespace
{

using namespace vn::units;

/** E --R--> node(C to gnd) with a load port at the node. */
struct RcFixture
{
    vn::Netlist net;
    vn::NodeId node;
    vn::PortId load;
    double e = 1.0, r = 10.0, c = 1e-6;

    RcFixture()
    {
        vn::NodeId src = net.addNode("src");
        node = net.addNode("out");
        net.addVoltageSource(src, vn::Netlist::ground, e);
        net.addResistor(src, node, r);
        net.addCapacitor(node, vn::Netlist::ground, c);
        load = net.addCurrentPort(node, vn::Netlist::ground, "load");
    }
};

TEST(TransientTest, DcOperatingPointMatchesOhm)
{
    RcFixture f;
    vn::TransientSolver sim(f.net, 1e-8);
    std::vector<double> i{0.02};
    sim.initDcOperatingPoint(i);
    // v = E - I*R
    EXPECT_NEAR(sim.nodeVoltage(f.node), 1.0 - 0.02 * 10.0, 1e-12);
}

TEST(TransientTest, SteadyStateIsStable)
{
    RcFixture f;
    vn::TransientSolver sim(f.net, 1e-7);
    std::vector<double> i{0.05};
    sim.initDcOperatingPoint(i);
    double v0 = sim.nodeVoltage(f.node);
    for (int k = 0; k < 1000; ++k)
        sim.step(i);
    EXPECT_NEAR(sim.nodeVoltage(f.node), v0, 1e-9);
}

TEST(TransientTest, RcStepMatchesExponential)
{
    RcFixture f;
    const double dt = 2e-7; // tau = RC = 1e-5, so 50 steps per tau
    vn::TransientSolver sim(f.net, dt);
    const double i0 = 0.0, i1 = 0.05;
    std::vector<double> drive{i0};
    sim.initDcOperatingPoint(drive);

    const double v_start = f.e - i0 * f.r;
    const double v_final = f.e - i1 * f.r;
    const double tau = f.r * f.c;

    drive[0] = i1;
    // Trapezoidal MNA applies a load step as of the *end* of the first
    // step, so the trajectory carries a one-step charge offset of
    // dI*dt/(2C) that then decays with the circuit time constant. The
    // tolerance models exactly that.
    const double first_step_offset = (i1 - i0) * dt / (2.0 * f.c);
    for (int k = 0; k < 300; ++k) {
        sim.step(drive);
        double expected =
            v_final + (v_start - v_final) * std::exp(-sim.time() / tau);
        double tol =
            first_step_offset * std::exp(-sim.time() / tau) + 2e-4;
        ASSERT_NEAR(sim.nodeVoltage(f.node), expected, tol)
            << "at t=" << sim.time();
    }
}

TEST(TransientTest, RlcRingingFrequencyMatchesAnalytic)
{
    // E --R--L--> node(C) with a current step at the node: damped
    // oscillation at fd = sqrt(1/LC - (R/2L)^2) / 2pi.
    vn::Netlist net;
    vn::NodeId src = net.addNode("src");
    vn::NodeId mid = net.addNode("mid");
    vn::NodeId out = net.addNode("out");
    const double e = 1.0, r = 0.05, l = 10e-9, c = 1e-6;
    net.addVoltageSource(src, vn::Netlist::ground, e);
    net.addResistor(src, mid, r);
    net.addInductor(mid, out, l);
    net.addCapacitor(out, vn::Netlist::ground, c);
    vn::PortId load = net.addCurrentPort(out, vn::Netlist::ground);
    (void)load;

    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    const double alpha = r / (2.0 * l);
    const double wd =
        std::sqrt(1.0 / (l * c) - alpha * alpha);
    const double fd = wd / (2.0 * M_PI);
    ASSERT_GT(fd, 0.8 * f0); // sanity: underdamped

    const double dt = 1.0 / (fd * 400.0);
    vn::TransientSolver sim(net, dt);
    std::vector<double> drive{0.0};
    sim.initDcOperatingPoint(drive);

    drive[0] = 1.0; // 1 A step
    // Record zero crossings of v - v_final to estimate the period.
    const double v_final = e - drive[0] * r;
    std::vector<double> crossings;
    double prev = sim.nodeVoltage(out) - v_final;
    for (int k = 0; k < 4000; ++k) {
        sim.step(drive);
        double cur = sim.nodeVoltage(out) - v_final;
        if (prev < 0.0 && cur >= 0.0) {
            // Linear interpolation of the crossing instant.
            double frac = prev / (prev - cur);
            crossings.push_back(sim.time() - dt * (1.0 - frac));
        }
        prev = cur;
    }
    ASSERT_GE(crossings.size(), 3u);
    double period = (crossings.back() - crossings.front()) /
                    static_cast<double>(crossings.size() - 1);
    EXPECT_NEAR(1.0 / period, fd, fd * 0.02);
}

TEST(TransientTest, EnergyDecaysInDampedCircuit)
{
    // With no sources and an initial load kick, total response decays.
    RcFixture f;
    vn::TransientSolver sim(f.net, 1e-7);
    std::vector<double> drive{0.1};
    sim.initDcOperatingPoint(drive);
    drive[0] = 0.0;
    double v_prev = sim.nodeVoltage(f.node);
    for (int k = 0; k < 1500; ++k)  // 15 time constants
        sim.step(drive);
    // Approaches the unloaded level E monotonically from below.
    EXPECT_GT(sim.nodeVoltage(f.node), v_prev);
    EXPECT_NEAR(sim.nodeVoltage(f.node), f.e, 1e-4);
}

TEST(TransientTest, TimestepConvergence)
{
    // Halving dt should change the trajectory only slightly
    // (trapezoidal is 2nd order).
    auto run = [](double dt) {
        RcFixture f;
        vn::TransientSolver sim(f.net, dt);
        std::vector<double> drive{0.0};
        sim.initDcOperatingPoint(drive);
        drive[0] = 0.05;
        double t_end = 1e-4; // 10 time constants: start-up offsets gone
        while (sim.time() < t_end)
            sim.step(drive);
        return sim.nodeVoltage(1 + 1); // "out" is the second node added
    };
    double coarse = run(4e-7);
    double fine = run(1e-7);
    EXPECT_NEAR(coarse, fine, 1e-5);
}

TEST(TransientTest, PortCountMismatchIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    RcFixture f;
    vn::TransientSolver sim(f.net, 1e-7);
    std::vector<double> wrong{0.0, 1.0};
    EXPECT_THROW(sim.initDcOperatingPoint(wrong), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(TransientTest, InductorCurrentTracksDcLoad)
{
    // Series source->R->L->node with load: at DC the inductor carries the
    // full load current.
    vn::Netlist net;
    vn::NodeId src = net.addNode("src");
    vn::NodeId mid = net.addNode("mid");
    vn::NodeId out = net.addNode("out");
    net.addVoltageSource(src, vn::Netlist::ground, 1.0);
    net.addResistor(src, mid, 0.1);
    net.addInductor(mid, out, 1e-9);
    net.addCapacitor(out, vn::Netlist::ground, 1e-6);
    net.addCurrentPort(out, vn::Netlist::ground);

    vn::TransientSolver sim(net, 1e-8);
    std::vector<double> drive{0.5};
    sim.initDcOperatingPoint(drive);
    EXPECT_NEAR(sim.inductorCurrent(0), 0.5, 1e-9);
    // Source delivers the same current (sign: out of + terminal into
    // the circuit shows up as a negative branch current in MNA).
    EXPECT_NEAR(std::abs(sim.sourceCurrent(0)), 0.5, 1e-9);
}

} // namespace
