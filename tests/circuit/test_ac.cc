/**
 * @file
 * AC-analysis validation against closed-form impedances, including the
 * resonance-location property sweep.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/ac.hh"
#include "circuit/netlist.hh"
#include "util/rng.hh"

namespace
{

TEST(AcTest, PureResistorImpedance)
{
    vn::Netlist net;
    vn::NodeId n = net.addNode("n");
    net.addResistor(n, vn::Netlist::ground, 4.2);
    vn::PortId p = net.addCurrentPort(n, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    for (double f : {1.0, 1e3, 1e6, 1e9}) {
        auto z = ac.impedance(p, f);
        EXPECT_NEAR(z.real(), 4.2, 1e-9) << "f=" << f;
        EXPECT_NEAR(z.imag(), 0.0, 1e-9) << "f=" << f;
    }
}

TEST(AcTest, CapacitorImpedanceMagnitudeAndPhase)
{
    vn::Netlist net;
    vn::NodeId n = net.addNode("n");
    const double c = 1e-6;
    net.addCapacitor(n, vn::Netlist::ground, c);
    vn::PortId p = net.addCurrentPort(n, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    for (double f : {100.0, 1e4, 1e6}) {
        auto z = ac.impedance(p, f);
        double expected = 1.0 / (2.0 * M_PI * f * c);
        EXPECT_NEAR(std::abs(z), expected, expected * 1e-9);
        // Capacitive impedance: -90 degrees.
        EXPECT_NEAR(std::arg(z), -M_PI / 2.0, 1e-9);
    }
}

TEST(AcTest, SeriesRlImpedanceWithShortedSource)
{
    // Source (AC short) -> R -> L -> node; Z = R + jwL.
    vn::Netlist net;
    vn::NodeId src = net.addNode("src");
    vn::NodeId mid = net.addNode("mid");
    vn::NodeId out = net.addNode("out");
    const double r = 2.0, l = 1e-6;
    net.addVoltageSource(src, vn::Netlist::ground, 1.0);
    net.addResistor(src, mid, r);
    net.addInductor(mid, out, l);
    vn::PortId p = net.addCurrentPort(out, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    for (double f : {1e3, 1e5, 1e7}) {
        auto z = ac.impedance(p, f);
        EXPECT_NEAR(z.real(), r, 1e-6);
        EXPECT_NEAR(z.imag(), 2.0 * M_PI * f * l, 2.0 * M_PI * f * l * 1e-9);
    }
}

TEST(AcTest, ParallelTankPeaksAtResonance)
{
    // Source -> R -> L -> node with C at node: peak near 1/(2pi sqrt(LC)).
    vn::Netlist net;
    vn::NodeId src = net.addNode("src");
    vn::NodeId mid = net.addNode("mid");
    vn::NodeId out = net.addNode("out");
    const double r = 0.01, l = 5e-9, c = 2e-6;
    net.addVoltageSource(src, vn::Netlist::ground, 1.0);
    net.addResistor(src, mid, r);
    net.addInductor(mid, out, l);
    net.addCapacitor(out, vn::Netlist::ground, c);
    vn::PortId p = net.addCurrentPort(out, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    double found = ac.resonanceFrequency(p, f0 / 100.0, f0 * 100.0);
    EXPECT_NEAR(found, f0, f0 * 0.02);

    // |Z| at the peak exceeds |Z| a decade away on either side.
    double z_peak = std::abs(ac.impedance(p, found));
    EXPECT_GT(z_peak, std::abs(ac.impedance(p, found / 10.0)) * 2.0);
    EXPECT_GT(z_peak, std::abs(ac.impedance(p, found * 10.0)) * 2.0);
}

/** Property sweep: resonance location tracks 1/(2pi sqrt(LC)). */
class ResonanceProperty : public ::testing::TestWithParam<int>
{};

TEST_P(ResonanceProperty, PeakNearAnalyticFrequency)
{
    vn::Rng rng(1000 + GetParam());
    const double l = std::pow(10.0, rng.uniform(-9.5, -7.5)); // 0.3-30 nH
    const double c = std::pow(10.0, rng.uniform(-7.0, -5.0)); // 0.1-10 uF

    vn::Netlist net;
    vn::NodeId src = net.addNode("src");
    vn::NodeId mid = net.addNode("mid");
    vn::NodeId out = net.addNode("out");
    const double x = std::sqrt(l / c);
    net.addVoltageSource(src, vn::Netlist::ground, 1.0);
    net.addResistor(src, mid, 0.05 * x); // keep underdamped (Q = 20)
    net.addInductor(mid, out, l);
    net.addCapacitor(out, vn::Netlist::ground, c);
    vn::PortId p = net.addCurrentPort(out, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
    double found = ac.resonanceFrequency(p, f0 / 50.0, f0 * 50.0);
    EXPECT_NEAR(found, f0, f0 * 0.05)
        << "L=" << l << " C=" << c;
}

INSTANTIATE_TEST_SUITE_P(RandomLc, ResonanceProperty,
                         ::testing::Range(0, 12));

TEST(AcTest, TransferImpedanceReciprocity)
{
    // Passive reciprocal network: Z(port_a -> node_b) == Z(port_b ->
    // node_a) when ports are node-to-ground.
    vn::Netlist net;
    vn::NodeId a = net.addNode("a");
    vn::NodeId b = net.addNode("b");
    vn::NodeId m = net.addNode("m");
    net.addResistor(a, m, 1.0);
    net.addResistor(m, b, 2.0);
    net.addCapacitor(m, vn::Netlist::ground, 1e-6);
    net.addInductor(a, vn::Netlist::ground, 1e-6);
    net.addResistor(b, vn::Netlist::ground, 5.0);
    vn::PortId pa = net.addCurrentPort(a, vn::Netlist::ground);
    vn::PortId pb = net.addCurrentPort(b, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    for (double f : {1e3, 1e5, 1e6}) {
        auto zab = ac.transferImpedance(pa, b, f);
        auto zba = ac.transferImpedance(pb, a, f);
        EXPECT_NEAR(zab.real(), zba.real(), 1e-9) << "f=" << f;
        EXPECT_NEAR(zab.imag(), zba.imag(), 1e-9) << "f=" << f;
    }
}

TEST(AcTest, SelfImpedanceConsistentWithTransferAtSameNode)
{
    vn::Netlist net;
    vn::NodeId n = net.addNode("n");
    net.addResistor(n, vn::Netlist::ground, 3.0);
    net.addCapacitor(n, vn::Netlist::ground, 1e-7);
    vn::PortId p = net.addCurrentPort(n, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    auto z1 = ac.impedance(p, 1e5);
    auto z2 = ac.transferImpedance(p, n, 1e5);
    EXPECT_NEAR(std::abs(z1 - z2), 0.0, 1e-12);
}

TEST(AcTest, SweepIsLogSpacedAndOrdered)
{
    vn::Netlist net;
    vn::NodeId n = net.addNode("n");
    net.addResistor(n, vn::Netlist::ground, 1.0);
    vn::PortId p = net.addCurrentPort(n, vn::Netlist::ground);

    vn::AcAnalysis ac(net);
    auto pts = ac.sweep(p, 1e3, 1e6, 4);
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_NEAR(pts[0].freq_hz, 1e3, 1e-6);
    EXPECT_NEAR(pts[1].freq_hz, 1e4, 1e-2);
    EXPECT_NEAR(pts[2].freq_hz, 1e5, 1e-1);
    EXPECT_NEAR(pts[3].freq_hz, 1e6, 1.0);
}

} // namespace
