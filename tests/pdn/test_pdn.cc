/**
 * @file
 * Tests for the zEC12-like PDN: resonance placement, DC droop, and the
 * cluster structure that drives the paper's propagation findings.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/ac.hh"
#include "circuit/transient.hh"
#include "pdn/pdn.hh"
#include "util/logging.hh"

namespace
{

std::vector<double>
idleCurrents(const vn::ChipPdn &pdn)
{
    return std::vector<double>(pdn.portCount(), 0.0);
}

TEST(PdnTest, BuildsWithExpectedPorts)
{
    auto pdn = vn::buildZec12Pdn();
    EXPECT_EQ(pdn.portCount(), 9u); // 6 cores + l3 + mcu + gx
    for (int core = 0; core < vn::kNumCores; ++core) {
        EXPECT_EQ(pdn.core_port[core], core);
        EXPECT_GT(pdn.core_node[core], 0);
    }
}

TEST(PdnTest, DomainAssignmentMatchesLayout)
{
    EXPECT_TRUE(vn::ChipPdn::upperDomain(0));
    EXPECT_FALSE(vn::ChipPdn::upperDomain(1));
    EXPECT_TRUE(vn::ChipPdn::upperDomain(2));
    EXPECT_FALSE(vn::ChipPdn::upperDomain(3));
    EXPECT_TRUE(vn::ChipPdn::upperDomain(4));
    EXPECT_FALSE(vn::ChipPdn::upperDomain(5));
}

TEST(PdnTest, DcVoltageNearNominalWhenIdle)
{
    auto pdn = vn::buildZec12Pdn();
    vn::TransientSolver sim(pdn.netlist, 1e-9);
    auto idle = idleCurrents(pdn);
    sim.initDcOperatingPoint(idle);
    for (int core = 0; core < vn::kNumCores; ++core)
        EXPECT_NEAR(sim.nodeVoltage(pdn.core_node[core]), pdn.vnom, 1e-9);
}

TEST(PdnTest, DcDroopGrowsWithLoad)
{
    auto pdn = vn::buildZec12Pdn();
    vn::TransientSolver sim(pdn.netlist, 1e-9);

    auto v_core0 = [&](double amps_per_core) {
        auto load = idleCurrents(pdn);
        for (int c = 0; c < vn::kNumCores; ++c)
            load[c] = amps_per_core;
        sim.initDcOperatingPoint(load);
        return sim.nodeVoltage(pdn.core_node[0]);
    };

    double v_idle = v_core0(0.0);
    double v_half = v_core0(15.0);
    double v_full = v_core0(30.0);
    EXPECT_GT(v_idle, v_half);
    EXPECT_GT(v_half, v_full);
    // Droop at 6 x 30 A should be noticeable but a small fraction of vnom.
    EXPECT_GT(pdn.vnom - v_full, 0.005);
    EXPECT_LT(pdn.vnom - v_full, 0.15 * pdn.vnom);
}

TEST(PdnTest, BoardResonanceNear40kHz)
{
    auto pdn = vn::buildZec12Pdn();
    auto profile = vn::impedanceProfile(pdn, 0);
    EXPECT_GT(profile.board_resonance_hz, 15e3);
    EXPECT_LT(profile.board_resonance_hz, 120e3);
}

TEST(PdnTest, DieResonanceNear2MHz)
{
    // The paper's headline PDN observation: the '1st droop' shifted to
    // the ~2 MHz band due to the deep-trench eDRAM decap.
    auto pdn = vn::buildZec12Pdn();
    auto profile = vn::impedanceProfile(pdn, 0);
    EXPECT_GT(profile.die_resonance_hz, 1.0e6);
    EXPECT_LT(profile.die_resonance_hz, 4.0e6);
}

TEST(PdnTest, ImpedancePeakModeratelyDamped)
{
    auto pdn = vn::buildZec12Pdn();
    vn::AcAnalysis ac(pdn.netlist);
    auto profile = vn::impedanceProfile(pdn, 0);
    double z_peak =
        std::abs(ac.impedance(pdn.core_port[0], profile.die_resonance_hz));
    double z_hi = std::abs(ac.impedance(pdn.core_port[0], 30e6));
    double z_lo = std::abs(ac.impedance(pdn.core_port[0], 5e3));
    // Resonance amplifies but the damped design keeps it bounded.
    EXPECT_GT(z_peak, 1.3 * z_hi);
    EXPECT_GT(z_peak, 1.3 * z_lo);
    EXPECT_LT(z_peak, 12.0 * z_hi);
}

TEST(PdnTest, NoResonanceAboveFiveMhz)
{
    // Above ~5 MHz the profile decays monotonically-ish: no peak larger
    // than the die resonance peak exists up there (paper section V-A:
    // "no longer an oscillatory power noise behavior above 5 MHz").
    auto pdn = vn::buildZec12Pdn();
    vn::AcAnalysis ac(pdn.netlist);
    auto profile = vn::impedanceProfile(pdn, 0);
    double z_res =
        std::abs(ac.impedance(pdn.core_port[0], profile.die_resonance_hz));
    auto pts = ac.sweep(pdn.core_port[0], 5e6, 1e9, 60);
    for (const auto &pt : pts)
        EXPECT_LT(std::abs(pt.z), z_res)
            << "unexpected high-frequency peak at " << pt.freq_hz;
}

TEST(PdnTest, SameClusterCouplingStrongerThanCross)
{
    // Transfer impedance core0 -> core2 (same domain) should exceed
    // core0 -> core1/3/5 (other domain) near the die resonance; this is
    // the mechanism behind the Fig. 13a clusters.
    auto pdn = vn::buildZec12Pdn();
    vn::AcAnalysis ac(pdn.netlist);
    auto profile = vn::impedanceProfile(pdn, 0);
    double f = profile.die_resonance_hz;

    double same = std::abs(
        ac.transferImpedance(pdn.core_port[0], pdn.core_node[2], f));
    for (int other : {1, 3, 5}) {
        double cross = std::abs(ac.transferImpedance(
            pdn.core_port[0], pdn.core_node[other], f));
        EXPECT_GT(same, cross) << "core " << other;
    }
}

TEST(PdnTest, TransferSymmetryAcrossMirrorCores)
{
    // Layout symmetry: coupling 0->2 matches 1->3 (mirrored clusters).
    auto pdn = vn::buildZec12Pdn();
    vn::AcAnalysis ac(pdn.netlist);
    for (double f : {40e3, 2e6}) {
        double upper = std::abs(
            ac.transferImpedance(pdn.core_port[0], pdn.core_node[2], f));
        double lower = std::abs(
            ac.transferImpedance(pdn.core_port[1], pdn.core_node[3], f));
        EXPECT_NEAR(upper, lower, upper * 1e-6) << "f=" << f;
    }
}

TEST(PdnTest, VariationScalesAffectBuild)
{
    vn::PdnConfig config;
    config.rail_res_scale = {1.0, 1.2, 0.9, 1.0, 1.1, 1.0};
    config.decap_scale = {1.0, 0.8, 1.0, 1.3, 1.0, 1.0};
    auto pdn = vn::buildZec12Pdn(config);
    EXPECT_EQ(pdn.portCount(), 9u);

    // Higher rail resistance on core 1 -> deeper DC droop under load.
    vn::TransientSolver sim(pdn.netlist, 1e-9);
    auto load = idleCurrents(pdn);
    for (int c = 0; c < vn::kNumCores; ++c)
        load[c] = 20.0;
    sim.initDcOperatingPoint(load);
    EXPECT_LT(sim.nodeVoltage(pdn.core_node[1]),
              sim.nodeVoltage(pdn.core_node[3]));
}

TEST(PdnTest, InvalidVariationIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::PdnConfig config;
    config.rail_res_scale[2] = 0.0;
    EXPECT_THROW(vn::buildZec12Pdn(config), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(PdnTest, StepResponseReachesNeighborFasterThanCrossCluster)
{
    // Time-domain version of the Fig. 13b finding: a deltaI event on
    // core 0 is felt more strongly on cores 2/4 than on 1/3/5.
    auto pdn = vn::buildZec12Pdn();
    vn::TransientSolver sim(pdn.netlist, 1e-9);
    auto load = idleCurrents(pdn);
    sim.initDcOperatingPoint(load);

    load[0] = 25.0; // step on core 0
    double droop_same = 0.0, droop_cross = 0.0;
    for (int k = 0; k < 4000; ++k) { // 4 us window
        sim.step(load);
        droop_same = std::max(
            droop_same, pdn.vnom - sim.nodeVoltage(pdn.core_node[2]));
        droop_cross = std::max(
            droop_cross, pdn.vnom - sim.nodeVoltage(pdn.core_node[3]));
    }
    EXPECT_GT(droop_same, droop_cross);
    EXPECT_GT(droop_cross, 0.0); // noise still propagates everywhere
}

} // namespace
