/**
 * @file
 * End-to-end integration tests: scaled-down versions of the paper's
 * experiments asserting the qualitative claims that EXPERIMENTS.md
 * reports, so regressions in any layer surface here.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "vnoise/vnoise.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Reduced-cost kit shared by the integration tests. */
const vn::StressmarkKit &
kit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 300;
        params.search.ipc_filter_keep = 32;
        params.search.ipc_eval_instrs = 200;
        params.search.power_eval_instrs = 800;
        vn::StressmarkKit built(core(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

vn::AnalysisContext
context()
{
    vn::AnalysisContext ctx;
    ctx.kit = &kit();
    ctx.window = 10e-6;
    ctx.unsync_draws = 3;
    ctx.consecutive_events = 1000;
    return ctx;
}

TEST(EndToEnd, MethodologyFindsCrossUnitMaxSequence)
{
    // The full-scale pipeline discovers a sequence that uses more than
    // one functional unit and reaches dispatch-width IPC.
    const auto &seq = kit().maxSequence();
    ASSERT_EQ(seq.size(), 6u);
    bool multiple_units = false;
    for (size_t i = 1; i < seq.size(); ++i)
        multiple_units |= seq[i]->unit != seq[0]->unit;
    EXPECT_TRUE(multiple_units);
    EXPECT_GT(kit().maxPower(), 3.2);
    EXPECT_LT(kit().minPower(), 1.95);
}

TEST(EndToEnd, ImpedanceAndNoiseResonanceAgree)
{
    // Fig. 7a vs 7b: the behavioural noise peak lands in the same band
    // as the electrical impedance peak.
    vn::ChipModel chip;
    auto zprofile = vn::impedanceProfile(chip.pdn(), 0);

    auto ctx = context();
    std::vector<double> freqs = vn::logspace(200e3, 20e6, 7);
    auto points = vn::sweepStimulusFrequency(ctx, freqs, false);
    const auto *peak = &points[0];
    for (const auto &p : points)
        if (p.max_p2p > peak->max_p2p)
            peak = &p;

    EXPECT_GT(peak->freq_hz, zprofile.die_resonance_hz / 4.0);
    EXPECT_LT(peak->freq_hz, zprofile.die_resonance_hz * 4.0);
}

TEST(EndToEnd, SynchronizationDominatesResonance)
{
    // Fig. 9: synchronized deltaI events off-resonance out-noise
    // unsynchronized ones at resonance.
    auto ctx = context();
    std::vector<double> off_res{500e3};
    std::vector<double> at_res{2.6e6};
    auto sync_off = vn::sweepStimulusFrequency(ctx, off_res, true);
    auto unsync_at = vn::sweepStimulusFrequency(ctx, at_res, false);
    EXPECT_GT(sync_off[0].max_p2p, unsync_at[0].max_p2p);
}

TEST(EndToEnd, MisalignmentStepKillsSyncBonus)
{
    // Fig. 10: spreading the copies over a handful of 62.5 ns ticks
    // brings noise down towards the unsynchronized level.
    auto ctx = context();
    std::vector<uint64_t> ticks{0, 10};
    auto points = vn::sweepMisalignment(ctx, 2.6e6, ticks, 2);

    std::vector<double> freqs{2.6e6};
    auto unsync = vn::sweepStimulusFrequency(ctx, freqs, false);

    EXPECT_GT(points[0].avg_max_p2p, unsync[0].max_p2p);
    EXPECT_LT(points[1].avg_max_p2p, points[0].avg_max_p2p);
    EXPECT_LT(points[1].avg_max_p2p, unsync[0].max_p2p * 1.45);
}

TEST(EndToEnd, NoiseMonotoneInDeltaI)
{
    // Fig. 11a: worst-case noise grows with the amount of deltaI.
    auto ctx = context();
    vn::MappingStudy study(ctx, 2.6e6);

    auto with_k_max = [&](int k) {
        vn::Mapping m{};
        m.fill(vn::WorkloadClass::Idle);
        for (int c = 0; c < k; ++c)
            m[c] = vn::WorkloadClass::Max;
        return study.run(m).max_p2p;
    };
    double n2 = with_k_max(2);
    double n4 = with_k_max(4);
    double n6 = with_k_max(6);
    EXPECT_LT(n2, n4);
    EXPECT_LT(n4, n6);
}

TEST(EndToEnd, ClustersMatchLayout)
{
    // Fig. 13a: the correlation clusters split along the L3 boundary:
    // {0,2,4} vs {1,3,5}. A reduced mapping set suffices.
    auto ctx = context();
    vn::MappingStudy study(ctx, 2.6e6);

    std::vector<vn::MappingResult> results;
    for (int mask = 1; mask < 64; mask += 2) { // 32 varied mappings
        vn::Mapping m{};
        for (int c = 0; c < vn::kNumCores; ++c) {
            m[c] = (mask >> c) & 1 ? vn::WorkloadClass::Max
                                   : vn::WorkloadClass::Idle;
        }
        results.push_back(study.run(m));
    }
    auto matrix = vn::noiseCorrelationMatrix(results);
    auto clusters = vn::detectClusters(matrix);
    EXPECT_EQ(clusters[0], clusters[2]);
    EXPECT_EQ(clusters[2], clusters[4]);
    EXPECT_EQ(clusters[1], clusters[3]);
    EXPECT_EQ(clusters[3], clusters[5]);
    EXPECT_NE(clusters[0], clusters[1]);
}

TEST(EndToEnd, PackedClusterWorseThanSpread)
{
    // Fig. 14: three stressmarks packed into one layout cluster beat
    // (in noise) the same three spread across clusters.
    auto ctx = context();
    vn::MappingStudy study(ctx, 2.6e6);
    auto place = [](std::initializer_list<int> cores) {
        vn::Mapping m{};
        m.fill(vn::WorkloadClass::Idle);
        for (int c : cores)
            m[c] = vn::WorkloadClass::Max;
        return m;
    };
    auto spread = study.run(place({1, 4, 5}));
    auto packed = study.run(place({0, 2, 4}));
    EXPECT_GT(packed.max_p2p, spread.max_p2p);
}

TEST(EndToEnd, LegacyPdnResonatesHigher)
{
    // Section V-A: without the deep-trench eDRAM decap (1/40th of the
    // on-chip capacitance) the '1st droop' sits at a much higher
    // frequency, as in pre-eDRAM designs (30-100 MHz).
    vn::PdnConfig legacy;
    legacy.c_die_fast /= 40.0;
    legacy.c_die_damp /= 40.0;
    legacy.c_l3 /= 40.0;
    legacy.c_core /= 40.0;
    auto legacy_pdn = vn::buildZec12Pdn(legacy);
    auto modern_pdn = vn::buildZec12Pdn();

    auto legacy_profile = vn::impedanceProfile(legacy_pdn, 0);
    auto modern_profile = vn::impedanceProfile(modern_pdn, 0);
    EXPECT_GT(legacy_profile.die_resonance_hz,
              4.0 * modern_profile.die_resonance_hz);
}

} // namespace
