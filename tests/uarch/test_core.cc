/**
 * @file
 * Core-model validation: IPC of known instruction mixes, structural
 * hazards, serialization, ROB throttling, and measured-power anchors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "isa/table.hh"
#include "uarch/core.hh"
#include "util/logging.hh"

namespace
{

const vn::InstrDesc &
instr(const char *mnem)
{
    return vn::instrTable().find(mnem);
}

vn::RunResult
runLoop(const vn::Program &p, uint64_t instrs = 4000)
{
    vn::CoreModel core;
    return core.run(p, instrs, 10'000'000);
}

TEST(CoreModelTest, PureFxuLimitedByTwoInstances)
{
    auto p = vn::makeRepeatedProgram(&instr("A"), 100);
    auto r = runLoop(p);
    EXPECT_NEAR(r.ipc(), 2.0, 0.05);
}

TEST(CoreModelTest, PureBranchLimitedByBranchCap)
{
    auto p = vn::makeRepeatedProgram(&instr("CIB"), 100);
    auto r = runLoop(p);
    EXPECT_NEAR(r.ipc(), 2.0, 0.05);
}

TEST(CoreModelTest, MixedSequenceReachesDispatchWidth)
{
    // One uop each on FXU, LSU, BRU: all three dispatch slots usable.
    vn::Program p;
    for (int i = 0; i < 100; ++i) {
        p.push(&instr("A"));
        p.push(&instr("L"));
        p.push(&instr("CIB"));
    }
    auto r = runLoop(p);
    EXPECT_NEAR(r.ipc(), 3.0, 0.05);
}

TEST(CoreModelTest, NonPipelinedDivideThrottles)
{
    const auto &d = instr("DDTRA");
    auto p = vn::makeRepeatedProgram(&d, 50);
    auto r = runLoop(p, 1000);
    EXPECT_NEAR(r.ipc(), 1.0 / d.latency, 0.005);
}

TEST(CoreModelTest, SerializingPeriodEqualsLatency)
{
    const auto &s = instr("SRNM");
    auto p = vn::makeRepeatedProgram(&s, 10);
    auto r = runLoop(p, 500);
    EXPECT_NEAR(r.ipc(), 1.0 / s.latency, 0.005);
}

TEST(CoreModelTest, RobBoundThrottlesLongLatencyStreams)
{
    // Pipelined load latency 4 on 2 LSUs: steady in-flight is 8. With a
    // ROB of 4, throughput halves to rob/latency = 1 uop/cycle.
    vn::CoreParams params;
    params.rob_size = 4;
    vn::CoreModel core(params);
    auto p = vn::makeRepeatedProgram(&instr("L"), 100);
    auto r = core.run(p, 4000, 1'000'000);
    EXPECT_NEAR(r.ipc(), 1.0, 0.05);
}

TEST(CoreModelTest, MeasuredPowerAnchorsMatchTableOne)
{
    // The normalized EPI profile should reproduce the paper's Table I
    // extremes: CIB at ~1.58x SRNM, DDTRA at ~1.01x SRNM.
    auto p_cib = vn::makeRepeatedProgram(&instr("CIB"), 4000);
    auto p_srnm = vn::makeRepeatedProgram(&instr("SRNM"), 4000);
    auto p_ddtra = vn::makeRepeatedProgram(&instr("DDTRA"), 4000);
    auto p_chhsi = vn::makeRepeatedProgram(&instr("CHHSI"), 4000);

    double srnm = runLoop(p_srnm, 2000).avg_power;
    EXPECT_NEAR(runLoop(p_cib).avg_power / srnm, 1.58, 0.01);
    EXPECT_NEAR(runLoop(p_ddtra, 2000).avg_power / srnm, 1.01, 0.01);
    EXPECT_NEAR(runLoop(p_chhsi).avg_power / srnm, 1.55, 0.01);
}

TEST(CoreModelTest, MaxMixBeatsAnySingleInstruction)
{
    // A cross-unit mix exceeds the best single-instruction benchmark
    // (stressmarks beat EPI toppers, as in the paper).
    vn::Program mix;
    for (int i = 0; i < 100; ++i) {
        mix.push(&instr("CIB"));
        mix.push(&instr("CHHSI"));
        mix.push(&instr("L"));
    }
    auto p_cib = vn::makeRepeatedProgram(&instr("CIB"), 300);
    EXPECT_GT(runLoop(mix).avg_power, runLoop(p_cib).avg_power * 1.05);
}

TEST(CoreModelTest, RunRespectsMaxCycles)
{
    vn::CoreModel core;
    auto p = vn::makeRepeatedProgram(&instr("A"), 1000);
    auto r = core.run(p, 1'000'000'000, 5000);
    EXPECT_EQ(r.cycles, 5000u);
}

TEST(CoreModelTest, RunCompletesWholeBodyIterations)
{
    vn::CoreModel core;
    vn::Program p;
    p.push(&instr("A"));
    p.push(&instr("L"));
    p.push(&instr("CIB"));
    auto r = core.run(p, 10);
    // Completed instruction count is a multiple of the body size.
    EXPECT_EQ(r.instrs % 3, 0u);
    EXPECT_GE(r.instrs, 10u);
}

TEST(CoreModelTest, PowerTraceShowsHighLowPhases)
{
    // 60 high-power instructions then enough SRNM to idle: the binned
    // trace must show a clear peak-to-peak swing.
    vn::Program p;
    for (int i = 0; i < 20; ++i) {
        p.push(&instr("CIB"));
        p.push(&instr("CHHSI"));
        p.push(&instr("L"));
    }
    p.pushRepeated(&instr("SRNM"), 10);

    vn::CoreModel core;
    auto trace = core.powerTrace(p, 4000, 4);
    ASSERT_GT(trace.size(), 100u);
    double high = trace.max();
    double low = trace.min();
    EXPECT_GT(high, core.params().static_power + 1.0);
    EXPECT_LT(low, core.params().static_power + 0.3);
}

TEST(CoreModelTest, PowerTraceBinTiming)
{
    vn::CoreModel core;
    auto p = vn::makeRepeatedProgram(&instr("A"), 100);
    auto trace = core.powerTrace(p, 1000, 10);
    EXPECT_EQ(trace.size(), 100u);
    EXPECT_NEAR(trace.dt(), 10.0 / core.params().clock_hz, 1e-18);
}

TEST(CoreModelTest, EmptyProgramIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::CoreModel core;
    vn::Program p;
    EXPECT_THROW(core.run(p, 100), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(CoreModelTest, StaticPowerFloorsIdleBins)
{
    // A serializing stream leaves most cycles idle: average power stays
    // near static.
    vn::CoreModel core;
    auto p = vn::makeRepeatedProgram(&instr("SRNM"), 100);
    auto r = core.run(p, 1000);
    EXPECT_NEAR(r.avg_power, core.params().static_power, 0.05);
}

/** Property sweep: IPC of single-instruction benchmarks never exceeds
 *  structural limits. */
class IpcBoundsProperty : public ::testing::TestWithParam<int>
{};

TEST_P(IpcBoundsProperty, WithinStructuralLimits)
{
    const auto &table = vn::instrTable();
    // Sample the ISA deterministically.
    size_t index = static_cast<size_t>(GetParam()) * 97 % table.size();
    const auto &d = table[index];

    vn::CoreModel core;
    auto p = vn::makeRepeatedProgram(&d, 200);
    auto r = core.run(p, 1000, 200'000);

    double ipc = r.ipc();
    EXPECT_LE(ipc, core.params().dispatch_width + 1e-9) << d.mnemonic;

    int instances =
        core.params().unit_instances[static_cast<int>(d.unit)];
    if (d.issue == vn::IssueClass::Pipelined) {
        double bound = std::min<double>(core.params().dispatch_width,
                                        instances * d.uops);
        // uops-per-cycle cannot exceed instance throughput.
        EXPECT_LE(ipc, std::min<double>(core.params().dispatch_width,
                                        instances) +
                           1e-9)
            << d.mnemonic;
        (void)bound;
    } else if (d.issue == vn::IssueClass::NonPipelined) {
        // Grace term for the finite-run end effect (the first uop
        // issues at cycle 0, so n uops fit in (n-1)*latency+1 cycles).
        double bound = static_cast<double>(instances * d.uops) / d.latency;
        double grace = bound * d.latency / static_cast<double>(r.cycles);
        EXPECT_LE(ipc, bound + grace + 1e-9) << d.mnemonic;
    } else {
        double bound = static_cast<double>(d.uops) / d.latency;
        double grace = bound * d.latency / static_cast<double>(r.cycles);
        EXPECT_LE(ipc, bound + grace + 1e-9) << d.mnemonic;
    }
    EXPECT_GT(ipc, 0.0) << d.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(IsaSample, IpcBoundsProperty,
                         ::testing::Range(0, 40));

} // namespace
