/**
 * @file
 * Tests for the work-stealing pool: completion, counters, the inline
 * serial path, and reuse across batches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/pool.hh"

namespace
{

using vn::runtime::Pool;

TEST(PoolTest, RunsEveryTaskOnce)
{
    for (int threads : {1, 2, 4}) {
        Pool pool(threads);
        std::atomic<int> counter{0};
        const int tasks = 200;
        for (int i = 0; i < tasks; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), tasks);
        EXPECT_EQ(pool.executed(), static_cast<uint64_t>(tasks));
    }
}

TEST(PoolTest, InlinePoolUsesNoThreads)
{
    Pool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.submit([&seen] { seen = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(seen, caller);
    EXPECT_EQ(pool.steals(), 0u);
}

TEST(PoolTest, ClampsNonPositiveThreadCounts)
{
    Pool pool(0);
    EXPECT_EQ(pool.threads(), 1);
    int ran = 0;
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran, 1);
}

TEST(PoolTest, ReusableAcrossBatches)
{
    Pool pool(2);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), 50 * (batch + 1));
    }
}

TEST(PoolTest, StealingMovesWorkToIdleWorkers)
{
    // One long task pins a worker; the short tasks round-robin'd onto
    // its deque must still all finish (stolen by the other workers).
    Pool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&counter, i] {
            if (i == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            ++counter;
        });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 64);
}

TEST(PoolTest, WaitWithNoTasksReturnsImmediately)
{
    Pool pool(2);
    pool.wait();
    EXPECT_EQ(pool.executed(), 0u);
}

} // namespace
