/**
 * @file
 * Durability tests: integrity-framed cache entries, scrub/quarantine,
 * the completion journal, and deterministic disk-fault injection.
 *
 * The campaign-level claim under test is the paper workflow's: a
 * multi-hour characterization campaign that crashes — torn writes,
 * full disks, kill -9 — must resume to results byte-identical to an
 * uninterrupted run, and must never serve a corrupt cached result.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/campaign.hh"
#include "runtime/faultfs.hh"
#include "runtime/journal.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace
{

using namespace vn::runtime;

/** A fresh scratch directory under the test working dir. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_("durability_test_" + name)
    {
        std::filesystem::remove_all(path_);
    }
    ~ScratchDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::filesystem::path &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Sorted (filename -> bytes) snapshot of a directory. */
std::map<std::string, std::string>
snapshotDir(const std::string &dir)
{
    std::map<std::string, std::string> files;
    if (!std::filesystem::exists(dir))
        return files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file())
            files[entry.path().filename().string()] =
                readFile(entry.path());
    }
    return files;
}

/** The single entry file (.kv or .blob) in `dir`, or fatal. */
std::filesystem::path
singleEntryPath(const std::string &dir)
{
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        std::string ext = entry.path().extension().string();
        if (ext == ".kv" || ext == ".blob")
            return entry.path();
    }
    ADD_FAILURE() << "no entry file in " << dir;
    return {};
}

vn::KeyValueFile
sampleEntry()
{
    vn::KeyValueFile kv;
    kv.set("v_min", 1.0423567891234567);
    kv.set("p2p", 12.75);
    return kv;
}

// ---------------------------------------------------------------------
// Entry framing: every corruption mode is a counted miss, never a
// served result.
// ---------------------------------------------------------------------

TEST(CacheFraming, StoreLoadRoundTripsThroughTheFrame)
{
    ScratchDir dir("frame_roundtrip");
    ResultCache cache(dir.path());
    EXPECT_TRUE(cache.store(1, sampleEntry()));
    auto loaded = cache.load(1);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->serialize(), sampleEntry().serialize());
    EXPECT_EQ(cache.counters().corrupt, 0u);

    // The on-disk bytes are framed: header + payload + checksum line.
    std::string bytes = readFile(singleEntryPath(dir.path()));
    EXPECT_EQ(bytes.rfind("vncache 1 ", 0), 0u);
    EXPECT_NE(bytes.find("\nvnsum "), std::string::npos);
}

TEST(CacheFraming, TruncatedEntryIsACountedMiss)
{
    ScratchDir dir("frame_truncated");
    ResultCache cache(dir.path());
    cache.store(2, sampleEntry());
    auto path = singleEntryPath(dir.path());
    std::string bytes = readFile(path);
    // A torn write keeps only a prefix; try several cut points.
    for (size_t keep : {0u, 5u, 20u}) {
        writeFile(path, bytes.substr(0, keep));
        EXPECT_FALSE(cache.load(2).has_value()) << "keep " << keep;
    }
    EXPECT_EQ(cache.counters().corrupt, 3u);
}

TEST(CacheFraming, FlippedBitIsACountedMiss)
{
    ScratchDir dir("frame_bitflip");
    ResultCache cache(dir.path());
    cache.store(3, sampleEntry());
    auto path = singleEntryPath(dir.path());
    std::string bytes = readFile(path);
    // Flip one payload bit; the checksum must catch it.
    std::string flipped = bytes;
    flipped[bytes.size() / 2] ^= 0x10;
    writeFile(path, flipped);
    EXPECT_FALSE(cache.load(3).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);

    // Restoring the original bytes restores the hit.
    writeFile(path, bytes);
    EXPECT_TRUE(cache.load(3).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);
}

TEST(CacheFraming, UnframedLegacyEntryIsACountedMiss)
{
    ScratchDir dir("frame_legacy");
    ResultCache cache(dir.path());
    cache.store(4, sampleEntry());
    // Overwrite with a valid *unframed* KeyValueFile — the
    // pre-durability format. Stale formats recompute, never decode.
    writeFile(singleEntryPath(dir.path()), sampleEntry().serialize());
    EXPECT_FALSE(cache.load(4).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);
}

TEST(CacheFraming, IntactFrameWithUnparsablePayloadIsACountedMiss)
{
    ScratchDir dir("frame_unparsable");
    ResultCache cache(dir.path());
    // storeText frames arbitrary bytes; copying that blob under a .kv
    // name simulates a writer bug the checksum cannot catch.
    cache.storeText(5, "this is not a key/value snapshot");
    auto blob = singleEntryPath(dir.path());
    auto kv = blob;
    kv.replace_extension(".kv");
    std::filesystem::rename(blob, kv);
    ResultCache reopened(dir.path());
    EXPECT_FALSE(reopened.load(5).has_value());
    EXPECT_EQ(reopened.counters().corrupt, 1u);
}

TEST(CacheFraming, TruncatedTextBlobIsACountedMiss)
{
    // Regression: loadText() on a torn blob must be a counted miss,
    // not a served prefix (the router caches response JSON this way).
    ScratchDir dir("frame_blob");
    ResultCache cache(dir.path());
    std::string text = "{\"result\": {\"v_min\": 1.042}}";
    EXPECT_TRUE(cache.storeText(6, text));
    ASSERT_EQ(cache.loadText(6), std::optional<std::string>(text));

    auto path = singleEntryPath(dir.path());
    std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() - 7));
    EXPECT_FALSE(cache.loadText(6).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);
}

TEST(CacheFraming, CorruptionFeedsTheGlobalAggregate)
{
    CacheCounters before = ResultCache::globalCounters();
    ScratchDir dir("frame_global");
    ResultCache cache(dir.path());
    cache.store(7, sampleEntry());
    writeFile(singleEntryPath(dir.path()), "garbage");
    EXPECT_FALSE(cache.load(7).has_value());
    CacheCounters after = ResultCache::globalCounters();
    EXPECT_EQ(after.corrupt, before.corrupt + 1);
}

// ---------------------------------------------------------------------
// Scrub and temp-file reaping.
// ---------------------------------------------------------------------

TEST(CacheScrub, QuarantinesExactlyTheCorruptEntries)
{
    ScratchDir dir("scrub_quarantine");
    ResultCache cache(dir.path());
    for (uint64_t key = 0; key < 5; ++key)
        cache.store(key, sampleEntry());
    // Corrupt entries 1 and 3 in different ways.
    auto rawKeyPath = [&](uint64_t key) {
        char name[32];
        std::snprintf(name, sizeof(name), "%016llx.kv",
                      static_cast<unsigned long long>(key));
        return (std::filesystem::path(dir.path()) / name).string();
    };
    std::string p1 = rawKeyPath(1);
    std::string p3 = rawKeyPath(3);
    ASSERT_TRUE(std::filesystem::exists(p1));
    ASSERT_TRUE(std::filesystem::exists(p3));
    writeFile(p1, "truncated nonsense");
    std::string b3 = readFile(p3);
    b3[b3.size() / 2] ^= 0x01;
    writeFile(p3, b3);

    ScrubReport report = cache.scrub();
    EXPECT_EQ(report.scanned, 5u);
    EXPECT_EQ(report.ok, 3u);
    EXPECT_EQ(report.quarantined, 2u);
    EXPECT_TRUE(std::filesystem::exists(p1 + ".quarantine"));
    EXPECT_TRUE(std::filesystem::exists(p3 + ".quarantine"));
    EXPECT_FALSE(std::filesystem::exists(p1));
    EXPECT_FALSE(std::filesystem::exists(p3));

    // The intact entries still load; the corrupt ones are now misses
    // without further corruption counts (they were quarantined away).
    uint64_t corrupt_after_scrub = cache.counters().corrupt;
    EXPECT_TRUE(cache.load(0).has_value());
    EXPECT_FALSE(cache.load(1).has_value());
    EXPECT_FALSE(cache.load(3).has_value());
    EXPECT_EQ(cache.counters().corrupt, corrupt_after_scrub);
    EXPECT_EQ(cache.counters().scrub_runs, 1u);
    EXPECT_EQ(cache.counters().scrub_scanned, 5u);
    EXPECT_EQ(cache.counters().scrub_quarantined, 2u);
}

TEST(CacheScrub, ScrubReapsTempFilesRegardlessOfAge)
{
    ScratchDir dir("scrub_tmp");
    ResultCache cache(dir.path());
    cache.store(1, sampleEntry());
    writeFile(std::filesystem::path(dir.path()) / "deadbeef.kv.tmp0",
              "partial");
    ScrubReport report = cache.scrub();
    EXPECT_EQ(report.tmp_reaped, 1u);
    EXPECT_EQ(report.scanned, 1u);
    EXPECT_EQ(report.ok, 1u);
    EXPECT_FALSE(std::filesystem::exists(
        std::filesystem::path(dir.path()) / "deadbeef.kv.tmp0"));
}

TEST(CacheScrub, OpenTimeReapIsAgeGated)
{
    ScratchDir dir("open_reap");
    std::filesystem::create_directories(dir.path());
    auto fresh = std::filesystem::path(dir.path()) / "aa.kv.tmp1";
    auto stale = std::filesystem::path(dir.path()) / "bb.kv.tmp2";
    writeFile(fresh, "live writer's temp");
    writeFile(stale, "crashed writer's temp");
    // Backdate the stale one beyond the reap age.
    std::filesystem::last_write_time(
        stale, std::filesystem::file_time_type::clock::now() -
                   std::chrono::hours(1));

    bool was_quiet = vn::setQuiet(true);
    ResultCache cache(dir.path());
    vn::setQuiet(was_quiet);
    EXPECT_TRUE(std::filesystem::exists(fresh));
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_EQ(cache.counters().tmp_reaped, 1u);
}

// ---------------------------------------------------------------------
// FaultFsSchedule: scripting, round-trip, seeded derivation.
// ---------------------------------------------------------------------

TEST(FaultFsSchedule, BuildersAndActionFor)
{
    FaultFsSchedule s;
    s.tornWrite(0, 10).enospc(2, 5).renameFail(4).bitFlip(6, 33, 3);
    EXPECT_EQ(s.actionCount(), 4u);
    EXPECT_EQ(s.actionFor(0).kind, FsFault::Kind::TornWrite);
    EXPECT_EQ(s.actionFor(0).bytes, 10u);
    EXPECT_EQ(s.actionFor(1).kind, FsFault::Kind::None);
    EXPECT_EQ(s.actionFor(2).kind, FsFault::Kind::Enospc);
    EXPECT_EQ(s.actionFor(4).kind, FsFault::Kind::RenameFail);
    EXPECT_EQ(s.actionFor(6).kind, FsFault::Kind::BitFlip);
    EXPECT_EQ(s.actionFor(6).bytes, 33u);
    EXPECT_EQ(s.actionFor(6).bit, 3u);
}

TEST(FaultFsSchedule, DumpParseRoundTrips)
{
    FaultFsSchedule s;
    s.tornWrite(3, 17).enospc(5).renameFail(7).bitFlip(11, 250, 7);
    FaultFsSchedule parsed = FaultFsSchedule::parse(s.dump());
    EXPECT_TRUE(parsed == s);
    EXPECT_EQ(parsed.dump(), s.dump());
}

TEST(FaultFsSchedule, ParseAcceptsCommentsAndRejectsGarbage)
{
    FaultFsSchedule s = FaultFsSchedule::parse(
        "# disk-fault script\n"
        "\n"
        "torn 0 12\n"
        "enospc 1\n");
    EXPECT_EQ(s.actionCount(), 2u);
    EXPECT_THROW(FaultFsSchedule::parse("melt 3"),
                 std::runtime_error);
    EXPECT_THROW(FaultFsSchedule::parse("torn nope 12"),
                 std::runtime_error);
}

TEST(FaultFsSchedule, RandomIsAPureFunctionOfItsArguments)
{
    FaultFsSchedule a = FaultFsSchedule::random(17, 100, 8);
    FaultFsSchedule b = FaultFsSchedule::random(17, 100, 8);
    FaultFsSchedule c = FaultFsSchedule::random(42, 100, 8);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_GE(a.actionCount(), 1u);
    // Round-trips through text so CI can pin a derived schedule.
    EXPECT_TRUE(FaultFsSchedule::parse(a.dump()) == a);
}

// ---------------------------------------------------------------------
// Fault injection through the cache: every injected failure is either
// a counted store failure (nothing published) or a counted corrupt
// miss (published but never served).
// ---------------------------------------------------------------------

/** Count files in `dir` whose name contains ".tmp". */
size_t
tmpFileCount(const std::string &dir)
{
    size_t n = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().find(".tmp") !=
            std::string::npos)
            ++n;
    }
    return n;
}

TEST(FaultFsInjection, TornWritePublishesACountedCorruptMiss)
{
    ScratchDir dir("inject_torn");
    FaultFs faults(FaultFsSchedule().tornWrite(0, 9));
    ResultCache cache(dir.path(), &faults);
    // The torn write lies success: store() returns true and the entry
    // is published...
    EXPECT_TRUE(cache.store(1, sampleEntry()));
    EXPECT_TRUE(cache.contains(1));
    // ...but loading it is a counted corrupt miss, never a result.
    EXPECT_FALSE(cache.load(1).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);
    EXPECT_EQ(faults.counters().injected_torn_writes, 1u);
}

TEST(FaultFsInjection, BitFlipPublishesACountedCorruptMiss)
{
    ScratchDir dir("inject_flip");
    FaultFs faults(FaultFsSchedule().bitFlip(0, 40, 2));
    ResultCache cache(dir.path(), &faults);
    EXPECT_TRUE(cache.store(1, sampleEntry()));
    EXPECT_FALSE(cache.load(1).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);
    EXPECT_EQ(faults.counters().injected_bit_flips, 1u);
}

TEST(FaultFsInjection, EnospcFailsTheStoreAndLeavesNoTempFile)
{
    ScratchDir dir("inject_enospc");
    FaultFs faults(FaultFsSchedule().enospc(0, 4));
    ResultCache cache(dir.path(), &faults);
    EXPECT_FALSE(cache.store(1, sampleEntry()));
    EXPECT_FALSE(cache.contains(1));
    EXPECT_EQ(tmpFileCount(dir.path()), 0u);
    EXPECT_EQ(cache.counters().store_failures, 1u);
    EXPECT_EQ(faults.counters().injected_enospc, 1u);
    // The next publish (unscheduled) succeeds and reads back clean.
    EXPECT_TRUE(cache.store(1, sampleEntry()));
    EXPECT_TRUE(cache.load(1).has_value());
}

TEST(FaultFsInjection, RenameFailureFailsTheStoreAndLeavesNoTempFile)
{
    ScratchDir dir("inject_rename");
    FaultFs faults(FaultFsSchedule().renameFail(0));
    ResultCache cache(dir.path(), &faults);
    EXPECT_FALSE(cache.storeText(1, "payload"));
    EXPECT_FALSE(cache.loadText(1).has_value());
    EXPECT_EQ(tmpFileCount(dir.path()), 0u);
    EXPECT_EQ(cache.counters().store_failures, 1u);
    EXPECT_EQ(faults.counters().injected_rename_failures, 1u);
}

TEST(FaultFsInjection, OperationIndicesCountEveryPublish)
{
    ScratchDir dir("inject_index");
    // Fault only publish #2; publishes 0, 1 and 3 must land clean.
    FaultFs faults(FaultFsSchedule().tornWrite(2, 3));
    ResultCache cache(dir.path(), &faults);
    for (uint64_t key = 0; key < 4; ++key)
        cache.store(key, sampleEntry());
    EXPECT_EQ(faults.counters().publishes, 4u);
    EXPECT_TRUE(cache.load(0).has_value());
    EXPECT_TRUE(cache.load(1).has_value());
    EXPECT_FALSE(cache.load(2).has_value());
    EXPECT_TRUE(cache.load(3).has_value());
    EXPECT_EQ(cache.counters().corrupt, 1u);
}

// ---------------------------------------------------------------------
// Seeded fault determinism: the check.sh replay tier runs this suite
// under VNOISE_FAULT_SEED=17 and 42 — for any seed, a faulted
// single-threaded store sequence must replay bit-identically.
// ---------------------------------------------------------------------

TEST(FaultFsDeterminism, SameSeedYieldsByteIdenticalCacheDirectories)
{
    const char *env = std::getenv("VNOISE_FAULT_SEED");
    const uint64_t seed =
        env ? std::strtoull(env, nullptr, 10) : 17ull;
    const uint64_t writes = 24;

    auto run = [&](const std::string &dir) {
        FaultFs faults(FaultFsSchedule::random(seed, writes, 6));
        ResultCache cache(dir, &faults);
        for (uint64_t key = 0; key < writes; ++key) {
            vn::KeyValueFile kv;
            kv.set("value", static_cast<double>(key) + 0.5);
            kv.set("seeded", static_cast<double>(seed));
            cache.store(key, kv);
        }
        return faults.counters();
    };

    ScratchDir a("determinism_a"), b("determinism_b");
    FaultFsCounters ca = run(a.path());
    FaultFsCounters cb = run(b.path());
    EXPECT_EQ(ca.publishes, cb.publishes);
    EXPECT_EQ(ca.injected_torn_writes, cb.injected_torn_writes);
    EXPECT_EQ(ca.injected_enospc, cb.injected_enospc);
    EXPECT_EQ(ca.injected_rename_failures,
              cb.injected_rename_failures);
    EXPECT_EQ(ca.injected_bit_flips, cb.injected_bit_flips);

    auto sa = snapshotDir(a.path());
    auto sb = snapshotDir(b.path());
    ASSERT_EQ(sa.size(), sb.size());
    for (const auto &[name, bytes] : sa) {
        ASSERT_TRUE(sb.count(name)) << name;
        EXPECT_EQ(bytes, sb[name]) << name;
    }

    // And a faulted cache never serves corrupt data: reads after the
    // faulted run either hit with intact payloads or miss.
    ResultCache verify(a.path());
    for (uint64_t key = 0; key < writes; ++key) {
        auto entry = verify.load(key);
        if (entry.has_value()) {
            EXPECT_EQ(entry->require("value"),
                      static_cast<double>(key) + 0.5);
        }
    }
}

// ---------------------------------------------------------------------
// Journal: append/replay, torn tails, scope binding.
// ---------------------------------------------------------------------

TEST(Journal, AppendsReplayAcrossReopen)
{
    ScratchDir dir("journal_replay");
    {
        Journal j(dir.path(), "scope", 99, false);
        EXPECT_TRUE(j.append("point 0"));
        EXPECT_TRUE(j.append("point 1"));
        EXPECT_FALSE(j.append("point 0")); // dedup
        EXPECT_EQ(j.size(), 2u);
        j.sync();
    }
    Journal j(dir.path(), "scope", 99, true);
    EXPECT_EQ(j.replayed(), 2u);
    EXPECT_TRUE(j.contains("point 0"));
    EXPECT_TRUE(j.contains("point 1"));
    EXPECT_FALSE(j.contains("point 2"));
    EXPECT_FALSE(j.recoveredTornTail());
    // Appends continue after the replayed records.
    EXPECT_TRUE(j.append("point 2"));
    EXPECT_EQ(j.size(), 3u);
}

TEST(Journal, FreshOpenDiscardsThePreviousRun)
{
    ScratchDir dir("journal_fresh");
    {
        Journal j(dir.path(), "scope", 99, false);
        j.append("old");
    }
    Journal j(dir.path(), "scope", 99, /*resume=*/false);
    EXPECT_EQ(j.replayed(), 0u);
    EXPECT_FALSE(j.contains("old"));
}

TEST(Journal, TornTailIsTruncatedAndJournalingContinues)
{
    ScratchDir dir("journal_torn");
    std::string path = Journal::pathFor(dir.path(), "scope", 7);
    {
        Journal j(dir.path(), "scope", 7, false);
        for (int i = 0; i < 5; ++i)
            j.append("key " + std::to_string(i));
    }
    // Tear the tail mid-record, as kill -9 during an append would.
    std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() - 9));

    bool was_quiet = vn::setQuiet(true);
    Journal j(dir.path(), "scope", 7, true);
    vn::setQuiet(was_quiet);
    EXPECT_TRUE(j.recoveredTornTail());
    EXPECT_EQ(j.replayed(), 4u);
    EXPECT_TRUE(j.contains("key 3"));
    EXPECT_FALSE(j.contains("key 4")); // the torn record

    // The file is self-healed: appending and reopening works.
    EXPECT_TRUE(j.append("key 4"));
    Journal again(dir.path(), "scope", 7, true);
    EXPECT_EQ(again.replayed(), 5u);
    EXPECT_FALSE(again.recoveredTornTail());
}

TEST(Journal, CorruptedRecordStopsReplayAtTheLastGoodOne)
{
    ScratchDir dir("journal_corrupt");
    std::string path = Journal::pathFor(dir.path(), "scope", 7);
    {
        Journal j(dir.path(), "scope", 7, false);
        for (int i = 0; i < 4; ++i)
            j.append("key " + std::to_string(i));
    }
    // Flip a byte inside record #2's key: its checksum goes stale, so
    // replay keeps records 0-1 and truncates the rest away.
    std::string bytes = readFile(path);
    size_t target = bytes.find("key 2");
    ASSERT_NE(target, std::string::npos);
    bytes[target + 4] = '9';
    writeFile(path, bytes);

    Journal j(dir.path(), "scope", 7, true);
    EXPECT_TRUE(j.recoveredTornTail());
    EXPECT_EQ(j.replayed(), 2u);
    EXPECT_TRUE(j.contains("key 1"));
    EXPECT_FALSE(j.contains("key 2"));
    EXPECT_FALSE(j.contains("key 9"));
    EXPECT_FALSE(j.contains("key 3"));
}

TEST(Journal, MismatchedSeedStartsFreshInsteadOfReplaying)
{
    ScratchDir dir("journal_seed");
    {
        Journal j(dir.path(), "scope", 1, false);
        j.append("done under seed 1");
    }
    // Same (dir, scope) but a different seed is a different file —
    // scope hash includes the seed, so nothing can cross-replay.
    Journal j(dir.path(), "scope", 2, true);
    EXPECT_EQ(j.replayed(), 0u);
    EXPECT_FALSE(j.contains("done under seed 1"));
    EXPECT_NE(Journal::pathFor(dir.path(), "scope", 1),
              Journal::pathFor(dir.path(), "scope", 2));
}

TEST(Journal, GarbageFileIsReplacedWithAWarning)
{
    ScratchDir dir("journal_garbage");
    std::string path = Journal::pathFor(dir.path(), "scope", 3);
    std::filesystem::create_directories(dir.path());
    writeFile(path, "not a journal at all\n");
    Journal j(dir.path(), "scope", 3, true);
    EXPECT_EQ(j.replayed(), 0u);
    EXPECT_TRUE(j.append("fresh"));
    Journal again(dir.path(), "scope", 3, true);
    EXPECT_EQ(again.replayed(), 1u);
}

TEST(Journal, KeysWithSpacesSurviveTheRoundTrip)
{
    ScratchDir dir("journal_spaces");
    std::string key = "fsweep f=2.6e6 corner=tt  padded";
    {
        Journal j(dir.path(), "scope", 4, false);
        j.append(key);
    }
    Journal j(dir.path(), "scope", 4, true);
    EXPECT_EQ(j.replayed(), 1u);
    EXPECT_TRUE(j.contains(key));
}

// ---------------------------------------------------------------------
// Campaign-level resume: the user-facing guarantee.
// ---------------------------------------------------------------------

struct Point
{
    double value = 0.0;
    double noise = 0.0;
};

void
encodePoint(const Point &p, vn::KeyValueFile &kv)
{
    kv.set("value", p.value);
    kv.set("noise", p.noise);
}

Point
decodePoint(const vn::KeyValueFile &kv)
{
    return {kv.require("value"), kv.require("noise")};
}

Point
seededJob(uint64_t seed, int index)
{
    vn::Rng rng(seed);
    Point p;
    p.value = index + rng.uniform();
    for (int i = 0; i < 10; ++i)
        p.noise += rng.uniform(-1.0, 1.0);
    return p;
}

std::vector<Point>
runResumable(const std::string &cache_dir,
             const std::string &journal_dir, bool resume, int n,
             CampaignStats *sink)
{
    CampaignOptions options;
    options.jobs = 2;
    options.cache_dir = cache_dir;
    options.journal_dir = journal_dir;
    options.resume = resume;
    options.stats_sink = sink;
    Campaign<Point> campaign(options, 99, "scope window=1e-6");
    campaign.setCodec(encodePoint, decodePoint);
    for (int i = 0; i < n; ++i) {
        campaign.submit("point " + std::to_string(i), [i](uint64_t s) {
            return seededJob(s, i);
        });
    }
    return campaign.collectOrFatal();
}

TEST(CampaignResume, ResumedRunSkipsEverythingAndMatchesByteForByte)
{
    ScratchDir cache("resume_cache"), journal("resume_journal");
    CampaignStats first, second;
    auto fresh =
        runResumable(cache.path(), journal.path(), false, 15, &first);
    EXPECT_EQ(first.executed, 15u);
    EXPECT_EQ(first.journal_skips, 0u);

    auto resumed =
        runResumable(cache.path(), journal.path(), true, 15, &second);
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.cache_hits, 15u);
    EXPECT_EQ(second.journal_skips, 15u);
    EXPECT_EQ(second.cache_corrupt, 0u);
    ASSERT_EQ(fresh.size(), resumed.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].value, resumed[i].value) << "at " << i;
        EXPECT_EQ(fresh[i].noise, resumed[i].noise) << "at " << i;
    }
    EXPECT_NE(second.summary().find("resumed"), std::string::npos);
}

TEST(CampaignResume, RecomputesExactlyTheMissingAndCorruptEntries)
{
    ScratchDir cache("resume_gap_cache"), journal("resume_gap_jnl");
    CampaignStats first;
    auto fresh =
        runResumable(cache.path(), journal.path(), false, 10, &first);
    ASSERT_EQ(first.executed, 10u);

    // Simulate the crash aftermath: one entry vanished (the rename
    // never landed), one is torn (the data write didn't finish).
    auto entryFile = [&](const std::string &key) {
        char name[32];
        std::snprintf(name, sizeof(name), "%016llx.kv",
                      static_cast<unsigned long long>(
                          ResultCache::keyFor("scope window=1e-6",
                                              key)));
        return (std::filesystem::path(cache.path()) / name).string();
    };
    std::string gone = entryFile("point 2");
    std::string torn = entryFile("point 7");
    ASSERT_TRUE(std::filesystem::remove(gone));
    std::string bytes = readFile(torn);
    writeFile(torn, bytes.substr(0, bytes.size() / 2));

    CampaignStats second;
    auto resumed =
        runResumable(cache.path(), journal.path(), true, 10, &second);
    // Only the two damaged lanes recompute; the torn one is a counted
    // corrupt encounter surfaced in the stats.
    EXPECT_EQ(second.executed, 2u);
    EXPECT_EQ(second.cache_hits, 8u);
    EXPECT_EQ(second.journal_skips, 8u);
    EXPECT_EQ(second.cache_corrupt, 1u);
    ASSERT_EQ(fresh.size(), resumed.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].value, resumed[i].value) << "at " << i;
        EXPECT_EQ(fresh[i].noise, resumed[i].noise) << "at " << i;
    }
    EXPECT_NE(second.summary().find("corrupt"), std::string::npos);
}

TEST(CampaignResume, FaultedFirstRunStillResumesToIdenticalResults)
{
    // End-to-end composition: a first run under injected disk faults
    // loses some entries (failed stores) and poisons others (torn
    // writes, bit flips); the resumed run recomputes exactly the
    // damage and converges to the unfaulted reference.
    auto reference = runResumable("", "", false, 12, nullptr);

    ScratchDir cache("resume_fault_cache"),
        journal("resume_fault_jnl");
    FaultFs faults(FaultFsSchedule()
                       .tornWrite(1, 11)
                       .enospc(4)
                       .renameFail(6)
                       .bitFlip(9, 52, 1));
    {
        // The campaign engine owns its cache; drive the same publish
        // sequence through a faulted cache by priming it manually.
        ResultCache primed(cache.path(), &faults);
        Journal j(journal.path(), "scope window=1e-6", 99, false);
        for (int i = 0; i < 12; ++i) {
            std::string key = "point " + std::to_string(i);
            vn::KeyValueFile kv;
            encodePoint(seededJob(vn::runtime::deriveSeed(99, key), i),
                        kv);
            if (primed.store(ResultCache::keyFor("scope window=1e-6",
                                                 key),
                             kv))
                j.append(key);
        }
    }

    CampaignStats stats;
    auto resumed =
        runResumable(cache.path(), journal.path(), true, 12, &stats);
    // Two stores failed outright (enospc, rename) and two published
    // corrupt (torn, flip): exactly four lanes recompute.
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.cache_hits, 8u);
    EXPECT_EQ(stats.cache_corrupt, 2u);
    ASSERT_EQ(reference.size(), resumed.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].value, resumed[i].value) << "at " << i;
        EXPECT_EQ(reference[i].noise, resumed[i].noise) << "at " << i;
    }
}

} // namespace
