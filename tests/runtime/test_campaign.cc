/**
 * @file
 * Tests for the campaign engine: the three guarantees (determinism
 * across thread counts, cache round-trips, fault containment) plus the
 * counters that report them.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/campaign.hh"
#include "util/rng.hh"

namespace
{

using namespace vn::runtime;

/** A fresh cache directory under the test working dir. */
class CacheDir
{
  public:
    explicit CacheDir(const std::string &name)
        : path_("campaign_test_" + name)
    {
        std::filesystem::remove_all(path_);
    }
    ~CacheDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A result with enough structure to expose codec bugs. */
struct Point
{
    double value = 0.0;
    double noise = 0.0;
};

void
encodePoint(const Point &p, vn::KeyValueFile &kv)
{
    kv.set("value", p.value);
    kv.set("noise", p.noise);
}

Point
decodePoint(const vn::KeyValueFile &kv)
{
    return {kv.require("value"), kv.require("noise")};
}

/** A job whose output depends on its derived seed. */
Point
seededJob(uint64_t seed, int index)
{
    vn::Rng rng(seed);
    Point p;
    p.value = index + rng.uniform();
    for (int i = 0; i < 10; ++i)
        p.noise += rng.uniform(-1.0, 1.0);
    return p;
}

std::vector<Point>
runCampaign(int jobs, const std::string &cache_dir, int n,
            CampaignStats *sink = nullptr)
{
    CampaignOptions options;
    options.jobs = jobs;
    options.cache_dir = cache_dir;
    options.stats_sink = sink;
    Campaign<Point> campaign(options, 99, "scope window=1e-6");
    campaign.setCodec(encodePoint, decodePoint);
    for (int i = 0; i < n; ++i) {
        campaign.submit("point " + std::to_string(i),
                        [i](uint64_t seed) { return seededJob(seed, i); });
    }
    return campaign.collectOrFatal();
}

TEST(CampaignTest, ParallelRunIsBitIdenticalToSerial)
{
    auto serial = runCampaign(1, "", 40);
    auto parallel = runCampaign(4, "", 40);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].value, parallel[i].value) << "at " << i;
        EXPECT_EQ(serial[i].noise, parallel[i].noise) << "at " << i;
    }
}

TEST(CampaignTest, ResultsComeBackInSubmissionOrder)
{
    auto results = runCampaign(4, "", 64);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_GE(results[i].value, static_cast<double>(i));
        EXPECT_LT(results[i].value, static_cast<double>(i) + 1.0);
    }
}

TEST(CampaignTest, SecondRunIsAllCacheHitsAndByteIdentical)
{
    CacheDir dir("roundtrip");
    CampaignStats first, second;
    auto fresh = runCampaign(2, dir.path(), 20, &first);
    auto cached = runCampaign(2, dir.path(), 20, &second);

    EXPECT_EQ(first.cache_hits, 0u);
    EXPECT_EQ(first.executed, 20u);
    EXPECT_EQ(second.cache_hits, 20u);
    EXPECT_EQ(second.executed, 0u);

    ASSERT_EQ(fresh.size(), cached.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].value, cached[i].value) << "at " << i;
        EXPECT_EQ(fresh[i].noise, cached[i].noise) << "at " << i;
    }
}

TEST(CampaignTest, ScopeChangeInvalidatesCache)
{
    CacheDir dir("scope");
    CampaignOptions options;
    options.cache_dir = dir.path();
    auto run = [&](const std::string &scope, CampaignStats &stats) {
        options.stats_sink = &stats;
        Campaign<Point> campaign(options, 1, scope);
        campaign.setCodec(encodePoint, decodePoint);
        campaign.submit("p", [](uint64_t s) { return seededJob(s, 0); });
        campaign.collectOrFatal();
    };
    CampaignStats a, b, c;
    run("window=1e-6", a);
    run("window=2e-6", b); // different scope: must not hit
    run("window=1e-6", c); // original scope again: must hit
    EXPECT_EQ(a.executed, 1u);
    EXPECT_EQ(b.executed, 1u);
    EXPECT_EQ(b.cache_hits, 0u);
    EXPECT_EQ(c.cache_hits, 1u);
}

TEST(CampaignTest, CorruptCacheEntryIsAMiss)
{
    CacheDir dir("corrupt");
    CampaignStats first;
    runCampaign(1, dir.path(), 3, &first);
    ASSERT_EQ(first.executed, 3u);
    for (const auto &e :
         std::filesystem::directory_iterator(dir.path())) {
        std::ofstream out(e.path());
        out << "not a kvfile\n";
    }
    CampaignStats second;
    auto results = runCampaign(1, dir.path(), 3, &second);
    EXPECT_EQ(second.cache_hits, 0u);
    EXPECT_EQ(second.executed, 3u);
    EXPECT_EQ(results.size(), 3u);
}

TEST(CampaignTest, ThrowingJobIsContainedAndRetried)
{
    CampaignOptions options;
    options.jobs = 2;
    Campaign<Point> campaign(options, 5, "scope");
    for (int i = 0; i < 6; ++i) {
        campaign.submit("job " + std::to_string(i), [i](uint64_t seed) {
            if (i == 3)
                throw std::runtime_error("solver diverged");
            return seededJob(seed, i);
        });
    }
    auto results = campaign.collect();
    ASSERT_EQ(results.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(results[static_cast<size_t>(i)].has_value(), i != 3);

    ASSERT_EQ(campaign.failures().size(), 1u);
    const auto &f = campaign.failures()[0];
    EXPECT_EQ(f.index, 3u);
    EXPECT_EQ(f.key, "job 3");
    EXPECT_EQ(f.attempts, 2); // default max_attempts
    EXPECT_EQ(f.error, "solver diverged");
    EXPECT_EQ(campaign.stats().failures, 1u);
    EXPECT_EQ(campaign.stats().retries, 1u);
}

TEST(CampaignTest, FlakyJobSucceedsOnRetryWithSameSeed)
{
    std::atomic<int> calls{0};
    std::atomic<uint64_t> first_seed{0}, second_seed{0};
    CampaignOptions options;
    Campaign<Point> campaign(options, 5, "scope");
    campaign.submit("flaky", [&](uint64_t seed) {
        if (calls++ == 0) {
            first_seed = seed;
            throw std::runtime_error("transient");
        }
        second_seed = seed;
        return seededJob(seed, 0);
    });
    auto results = campaign.collectOrFatal();
    EXPECT_EQ(results.size(), 1u);
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(first_seed.load(), second_seed.load());
    EXPECT_EQ(campaign.stats().retries, 1u);
    EXPECT_EQ(campaign.stats().failures, 0u);
}

TEST(CampaignTest, StatsSinkAggregatesAcrossCampaigns)
{
    CampaignStats sink;
    runCampaign(2, "", 10, &sink);
    runCampaign(4, "", 5, &sink);
    EXPECT_EQ(sink.jobs, 15u);
    EXPECT_EQ(sink.executed, 15u);
    EXPECT_EQ(sink.threads, 4);
    EXPECT_FALSE(sink.summary().empty());
}

} // namespace
