/**
 * @file
 * Tests for the campaign engine: the three guarantees (determinism
 * across thread counts, cache round-trips, fault containment) plus the
 * counters that report them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/campaign.hh"
#include "util/rng.hh"

namespace
{

using namespace vn::runtime;

/** A fresh cache directory under the test working dir. */
class CacheDir
{
  public:
    explicit CacheDir(const std::string &name)
        : path_("campaign_test_" + name)
    {
        std::filesystem::remove_all(path_);
    }
    ~CacheDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A result with enough structure to expose codec bugs. */
struct Point
{
    double value = 0.0;
    double noise = 0.0;
};

void
encodePoint(const Point &p, vn::KeyValueFile &kv)
{
    kv.set("value", p.value);
    kv.set("noise", p.noise);
}

Point
decodePoint(const vn::KeyValueFile &kv)
{
    return {kv.require("value"), kv.require("noise")};
}

/** A job whose output depends on its derived seed. */
Point
seededJob(uint64_t seed, int index)
{
    vn::Rng rng(seed);
    Point p;
    p.value = index + rng.uniform();
    for (int i = 0; i < 10; ++i)
        p.noise += rng.uniform(-1.0, 1.0);
    return p;
}

std::vector<Point>
runCampaign(int jobs, const std::string &cache_dir, int n,
            CampaignStats *sink = nullptr)
{
    CampaignOptions options;
    options.jobs = jobs;
    options.cache_dir = cache_dir;
    options.stats_sink = sink;
    Campaign<Point> campaign(options, 99, "scope window=1e-6");
    campaign.setCodec(encodePoint, decodePoint);
    for (int i = 0; i < n; ++i) {
        campaign.submit("point " + std::to_string(i),
                        [i](uint64_t seed) { return seededJob(seed, i); });
    }
    return campaign.collectOrFatal();
}

TEST(CampaignTest, ParallelRunIsBitIdenticalToSerial)
{
    auto serial = runCampaign(1, "", 40);
    auto parallel = runCampaign(4, "", 40);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].value, parallel[i].value) << "at " << i;
        EXPECT_EQ(serial[i].noise, parallel[i].noise) << "at " << i;
    }
}

TEST(CampaignTest, ResultsComeBackInSubmissionOrder)
{
    auto results = runCampaign(4, "", 64);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_GE(results[i].value, static_cast<double>(i));
        EXPECT_LT(results[i].value, static_cast<double>(i) + 1.0);
    }
}

TEST(CampaignTest, SecondRunIsAllCacheHitsAndByteIdentical)
{
    CacheDir dir("roundtrip");
    CampaignStats first, second;
    auto fresh = runCampaign(2, dir.path(), 20, &first);
    auto cached = runCampaign(2, dir.path(), 20, &second);

    EXPECT_EQ(first.cache_hits, 0u);
    EXPECT_EQ(first.executed, 20u);
    EXPECT_EQ(second.cache_hits, 20u);
    EXPECT_EQ(second.executed, 0u);

    ASSERT_EQ(fresh.size(), cached.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].value, cached[i].value) << "at " << i;
        EXPECT_EQ(fresh[i].noise, cached[i].noise) << "at " << i;
    }
}

TEST(CampaignTest, ScopeChangeInvalidatesCache)
{
    CacheDir dir("scope");
    CampaignOptions options;
    options.cache_dir = dir.path();
    auto run = [&](const std::string &scope, CampaignStats &stats) {
        options.stats_sink = &stats;
        Campaign<Point> campaign(options, 1, scope);
        campaign.setCodec(encodePoint, decodePoint);
        campaign.submit("p", [](uint64_t s) { return seededJob(s, 0); });
        campaign.collectOrFatal();
    };
    CampaignStats a, b, c;
    run("window=1e-6", a);
    run("window=2e-6", b); // different scope: must not hit
    run("window=1e-6", c); // original scope again: must hit
    EXPECT_EQ(a.executed, 1u);
    EXPECT_EQ(b.executed, 1u);
    EXPECT_EQ(b.cache_hits, 0u);
    EXPECT_EQ(c.cache_hits, 1u);
}

TEST(CampaignTest, CorruptCacheEntryIsAMiss)
{
    CacheDir dir("corrupt");
    CampaignStats first;
    runCampaign(1, dir.path(), 3, &first);
    ASSERT_EQ(first.executed, 3u);
    for (const auto &e :
         std::filesystem::directory_iterator(dir.path())) {
        std::ofstream out(e.path());
        out << "not a kvfile\n";
    }
    CampaignStats second;
    auto results = runCampaign(1, dir.path(), 3, &second);
    EXPECT_EQ(second.cache_hits, 0u);
    EXPECT_EQ(second.executed, 3u);
    EXPECT_EQ(results.size(), 3u);
}

TEST(CampaignTest, ThrowingJobIsContainedAndRetried)
{
    CampaignOptions options;
    options.jobs = 2;
    Campaign<Point> campaign(options, 5, "scope");
    for (int i = 0; i < 6; ++i) {
        campaign.submit("job " + std::to_string(i), [i](uint64_t seed) {
            if (i == 3)
                throw std::runtime_error("solver diverged");
            return seededJob(seed, i);
        });
    }
    auto results = campaign.collect();
    ASSERT_EQ(results.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(results[static_cast<size_t>(i)].has_value(), i != 3);

    ASSERT_EQ(campaign.failures().size(), 1u);
    const auto &f = campaign.failures()[0];
    EXPECT_EQ(f.index, 3u);
    EXPECT_EQ(f.key, "job 3");
    EXPECT_EQ(f.attempts, 2); // default max_attempts
    EXPECT_EQ(f.error, "solver diverged");
    EXPECT_EQ(campaign.stats().failures, 1u);
    EXPECT_EQ(campaign.stats().retries, 1u);
}

TEST(CampaignTest, FlakyJobSucceedsOnRetryWithSameSeed)
{
    std::atomic<int> calls{0};
    std::atomic<uint64_t> first_seed{0}, second_seed{0};
    CampaignOptions options;
    Campaign<Point> campaign(options, 5, "scope");
    campaign.submit("flaky", [&](uint64_t seed) {
        if (calls++ == 0) {
            first_seed = seed;
            throw std::runtime_error("transient");
        }
        second_seed = seed;
        return seededJob(seed, 0);
    });
    auto results = campaign.collectOrFatal();
    EXPECT_EQ(results.size(), 1u);
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(first_seed.load(), second_seed.load());
    EXPECT_EQ(campaign.stats().retries, 1u);
    EXPECT_EQ(campaign.stats().failures, 0u);
}

TEST(CampaignTest, StatsSinkAggregatesAcrossCampaigns)
{
    CampaignStats sink;
    runCampaign(2, "", 10, &sink);
    runCampaign(4, "", 5, &sink);
    EXPECT_EQ(sink.jobs, 15u);
    EXPECT_EQ(sink.executed, 15u);
    EXPECT_EQ(sink.threads, 4);
    EXPECT_FALSE(sink.summary().empty());
}

/** runCampaign, but submitting the same keys/work as lane batches. */
std::vector<Point>
runBatchedCampaign(int jobs, const std::string &cache_dir, int n,
                   size_t lanes, CampaignStats *sink = nullptr)
{
    CampaignOptions options;
    options.jobs = jobs;
    options.cache_dir = cache_dir;
    options.stats_sink = sink;
    Campaign<Point> campaign(options, 99, "scope window=1e-6");
    campaign.setCodec(encodePoint, decodePoint);
    for (int start = 0; start < n; start += static_cast<int>(lanes)) {
        int count = std::min(static_cast<int>(lanes), n - start);
        std::vector<std::string> keys;
        for (int i = start; i < start + count; ++i)
            keys.push_back("point " + std::to_string(i));
        campaign.submitBatch(
            keys, [start](std::span<const uint64_t> seeds,
                          std::span<const size_t> lane_idx) {
                std::vector<Point> out;
                for (size_t m = 0; m < seeds.size(); ++m) {
                    out.push_back(seededJob(
                        seeds[m],
                        start + static_cast<int>(lane_idx[m])));
                }
                return out;
            });
    }
    return campaign.collectOrFatal();
}

TEST(CampaignBatchTest, BatchedRunIsBitIdenticalToScalar)
{
    // Same keys, same campaign seed: batch lanes must see exactly the
    // scalar-derived per-key seeds and land at the same indices.
    auto scalar = runCampaign(1, "", 41);
    for (size_t lanes : {1u, 4u, 8u, 16u}) {
        auto batched = runBatchedCampaign(2, "", 41, lanes);
        ASSERT_EQ(scalar.size(), batched.size()) << "lanes " << lanes;
        for (size_t i = 0; i < scalar.size(); ++i) {
            EXPECT_EQ(scalar[i].value, batched[i].value)
                << "lanes " << lanes << " at " << i;
            EXPECT_EQ(scalar[i].noise, batched[i].noise)
                << "lanes " << lanes << " at " << i;
        }
    }
}

TEST(CampaignBatchTest, BatchAndScalarShareCacheEntries)
{
    // A scalar campaign fills the cache; a batched one over the same
    // keys must be 100% hits (and vice versa) since per-lane keys are
    // identical.
    CacheDir dir("batch_share");
    CampaignStats scalar_stats, batch_stats, back_stats;
    auto scalar = runCampaign(1, dir.path(), 12, &scalar_stats);
    auto batched = runBatchedCampaign(2, dir.path(), 12, 5, &batch_stats);
    EXPECT_EQ(scalar_stats.executed, 12u);
    EXPECT_EQ(batch_stats.cache_hits, 12u);
    EXPECT_EQ(batch_stats.executed, 0u);
    for (size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(scalar[i].value, batched[i].value) << "at " << i;

    // And a scalar replay over a batch-written cache also hits.
    CacheDir dir2("batch_write");
    runBatchedCampaign(1, dir2.path(), 7, 3, nullptr);
    auto replay = runCampaign(1, dir2.path(), 7, &back_stats);
    EXPECT_EQ(back_stats.cache_hits, 7u);
    for (size_t i = 0; i < replay.size(); ++i)
        EXPECT_EQ(scalar[i].value, replay[i].value) << "at " << i;
}

TEST(CampaignBatchTest, PartialCacheRecomputesOnlyMissingLanes)
{
    CacheDir dir("batch_partial");
    // Prime the cache with keys 0..5 only.
    runCampaign(1, dir.path(), 6, nullptr);

    // One 10-lane batch over keys 0..9: 6 hits, 4 computed; the batch
    // fn must be handed exactly the missing lane indices 6..9.
    CampaignOptions options;
    options.cache_dir = dir.path();
    CampaignStats stats;
    options.stats_sink = &stats;
    Campaign<Point> campaign(options, 99, "scope window=1e-6");
    campaign.setCodec(encodePoint, decodePoint);
    std::vector<std::string> keys;
    for (int i = 0; i < 10; ++i)
        keys.push_back("point " + std::to_string(i));
    std::vector<size_t> seen;
    campaign.submitBatch(
        keys, [&seen](std::span<const uint64_t> seeds,
                      std::span<const size_t> lane_idx) {
            seen.assign(lane_idx.begin(), lane_idx.end());
            std::vector<Point> out;
            for (size_t m = 0; m < seeds.size(); ++m)
                out.push_back(seededJob(
                    seeds[m], static_cast<int>(lane_idx[m])));
            return out;
        });
    auto results = campaign.collectOrFatal();

    EXPECT_EQ(stats.cache_hits, 6u);
    EXPECT_EQ(stats.executed, 4u);
    ASSERT_EQ(seen.size(), 4u);
    for (size_t m = 0; m < seen.size(); ++m)
        EXPECT_EQ(seen[m], 6u + m);

    auto reference = runCampaign(1, "", 10);
    for (size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(reference[i].value, results[i].value) << "at " << i;
}

TEST(CampaignBatchTest, ThrowingBatchFailsExactlyItsLanes)
{
    CampaignOptions options;
    Campaign<Point> campaign(options, 5, "scope");
    campaign.submitBatch({"a0", "a1"},
                         [](std::span<const uint64_t> seeds,
                            std::span<const size_t>) {
                             return std::vector<Point>(seeds.size());
                         });
    campaign.submitBatch({"b0", "b1", "b2"},
                         [](std::span<const uint64_t>,
                            std::span<const size_t>)
                             -> std::vector<Point> {
                             throw std::runtime_error("lane diverged");
                         });
    campaign.submitBatch({"c0"},
                         [](std::span<const uint64_t> seeds,
                            std::span<const size_t>) {
                             return std::vector<Point>(seeds.size());
                         });
    auto results = campaign.collect();
    ASSERT_EQ(results.size(), 6u);
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(results[i].has_value(), i < 2 || i == 5) << "at " << i;

    // Lanes 2..4 (the b batch) fail with their own indices and keys.
    ASSERT_EQ(campaign.failures().size(), 3u);
    for (size_t m = 0; m < 3; ++m) {
        EXPECT_EQ(campaign.failures()[m].index, 2u + m);
        EXPECT_EQ(campaign.failures()[m].key,
                  "b" + std::to_string(m));
        EXPECT_EQ(campaign.failures()[m].error, "lane diverged");
        EXPECT_EQ(campaign.failures()[m].attempts, 2);
    }
    EXPECT_EQ(campaign.stats().failures, 3u);
    EXPECT_EQ(campaign.stats().retries, 1u); // one whole-batch retry
}

TEST(CampaignBatchTest, WrongResultCountIsContained)
{
    CampaignOptions options;
    options.max_attempts = 1;
    Campaign<Point> campaign(options, 5, "scope");
    campaign.submitBatch({"x0", "x1"},
                         [](std::span<const uint64_t>,
                            std::span<const size_t>) {
                             return std::vector<Point>(1); // short!
                         });
    auto results = campaign.collect();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].has_value());
    EXPECT_FALSE(results[1].has_value());
    ASSERT_EQ(campaign.failures().size(), 2u);
    EXPECT_NE(campaign.failures()[0].error.find("batch returned"),
              std::string::npos);
}

TEST(CampaignBatchTest, LaneBatchCounterCountsMultiLaneJobsOnly)
{
    CampaignStats sink;
    runBatchedCampaign(1, "", 9, 4, &sink); // batches of 4, 4, 1
    EXPECT_EQ(sink.jobs, 9u);
    EXPECT_EQ(sink.executed, 9u);
    EXPECT_EQ(sink.lane_batches, 2u);
    runCampaign(1, "", 3, &sink); // scalar jobs never count
    EXPECT_EQ(sink.lane_batches, 2u);
}

} // namespace
