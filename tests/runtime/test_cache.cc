/**
 * @file
 * Tests for the content-addressed result cache.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "runtime/cache.hh"

namespace
{

using namespace vn::runtime;

class CacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { std::filesystem::remove_all(dir_); }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::string dir_ = "result_cache_test";
};

TEST_F(CacheTest, KeyDependsOnScopeKeyAndVersion)
{
    uint64_t base = ResultCache::keyFor("scope", "job");
    EXPECT_EQ(base, ResultCache::keyFor("scope", "job"));
    EXPECT_NE(base, ResultCache::keyFor("scope2", "job"));
    EXPECT_NE(base, ResultCache::keyFor("scope", "job2"));
    // Moving a character across the scope/key boundary must change
    // the address (the separator prevents concatenation collisions).
    EXPECT_NE(ResultCache::keyFor("ab", "c"),
              ResultCache::keyFor("a", "bc"));
}

TEST_F(CacheTest, StoreThenLoadRoundTrips)
{
    ResultCache cache(dir_);
    vn::KeyValueFile entry;
    entry.set("v_min", 1.0423567891234567);
    entry.set("p2p", 12.75);
    cache.store(42, entry);

    auto loaded = cache.load(42);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->require("v_min"), 1.0423567891234567);
    EXPECT_EQ(loaded->require("p2p"), 12.75);
    EXPECT_EQ(loaded->serialize(), entry.serialize());
}

TEST_F(CacheTest, MissingEntryIsAMiss)
{
    ResultCache cache(dir_);
    EXPECT_FALSE(cache.load(7).has_value());
}

TEST_F(CacheTest, StoreOverwritesAtomically)
{
    ResultCache cache(dir_);
    vn::KeyValueFile a, b;
    a.set("x", 1.0);
    b.set("x", 2.0);
    cache.store(9, a);
    cache.store(9, b);
    auto loaded = cache.load(9);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->require("x"), 2.0);
    // No leftover temporaries.
    size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(CacheTest, CreatesDirectoryTree)
{
    std::string nested = dir_ + "/a/b";
    ResultCache cache(nested);
    vn::KeyValueFile entry;
    entry.set("x", 3.0);
    cache.store(1, entry);
    EXPECT_TRUE(cache.load(1).has_value());
}

} // namespace
