/**
 * @file
 * Tests for content hashing and per-job seed derivation.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runtime/hash.hh"

namespace
{

using namespace vn::runtime;

TEST(HashTest, Fnv1aMatchesReferenceVectors)
{
    // Published 64-bit FNV-1a test vectors.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(HashTest, AppendIsIncremental)
{
    uint64_t whole = fnv1a("fsweep f=2.6e6");
    uint64_t split = fnv1aAppend(fnv1a("fsweep "), "f=2.6e6");
    EXPECT_EQ(whole, split);
}

TEST(HashTest, DeriveSeedIsDeterministic)
{
    EXPECT_EQ(deriveSeed(42, "job-a"), deriveSeed(42, "job-a"));
    EXPECT_NE(deriveSeed(42, "job-a"), deriveSeed(42, "job-b"));
    EXPECT_NE(deriveSeed(42, "job-a"), deriveSeed(43, "job-a"));
}

TEST(HashTest, NearIdenticalKeysLandFarApart)
{
    // Seeds feed xoshiro-style generators; sequential keys must not
    // produce sequential seeds. Check the seeds are all distinct and
    // don't share a common low byte pattern.
    std::set<uint64_t> seeds;
    std::set<uint8_t> low_bytes;
    for (int i = 0; i < 64; ++i) {
        uint64_t s = deriveSeed(7, "point " + std::to_string(i));
        seeds.insert(s);
        low_bytes.insert(static_cast<uint8_t>(s & 0xff));
    }
    EXPECT_EQ(seeds.size(), 64u);
    EXPECT_GT(low_bytes.size(), 32u);
}

} // namespace
