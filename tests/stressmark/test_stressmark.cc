/**
 * @file
 * Stressmark builder tests: phase sizing, knob behaviour, activity
 * conversion, and the end-to-end noise effect on the chip model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chip/chip.hh"
#include "isa/table.hh"
#include "stressmark/stressmark.hh"
#include "util/logging.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** A hand-built high-power sequence (cross-unit mix, IPC 3). */
vn::Program
highSeq()
{
    const auto &t = vn::instrTable();
    vn::Program p;
    p.push(&t.find("CIB"));
    p.push(&t.find("CHHSI"));
    p.push(&t.find("L"));
    p.push(&t.find("CRB"));
    p.push(&t.find("CHHSI"));
    p.push(&t.find("LG"));
    return p;
}

vn::Program
lowSeq()
{
    return vn::makeRepeatedProgram(&vn::instrTable().find("SRNM"), 6);
}

const vn::StressmarkBuilder &
builder()
{
    static vn::StressmarkBuilder b(core(), highSeq(), lowSeq());
    return b;
}

TEST(StressmarkBuilderTest, MeasuredPowersOrdered)
{
    EXPECT_GT(builder().highPower(), builder().lowPower() + 1.0);
}

TEST(StressmarkBuilderTest, PhaseSizingMatchesFrequency)
{
    vn::StressmarkSpec spec;
    spec.stimulus_freq_hz = 2e6;
    auto sm = builder().build(spec);

    // Half period = 250 ns = 1375 cycles at 5.5 GHz.
    EXPECT_NEAR(sm.half_period, 250e-9, 1e-12);
    // High sequence runs at IPC ~3 -> ~4125 instructions per phase.
    EXPECT_NEAR(static_cast<double>(sm.high_instrs), 1375.0 * 3.0,
                150.0);
    // SRNM period is 22 cycles -> ~62 instructions per phase.
    EXPECT_NEAR(static_cast<double>(sm.low_instrs), 1375.0 / 22.0, 8.0);
}

TEST(StressmarkBuilderTest, AssembledProgramHasBothPhases)
{
    vn::StressmarkSpec spec;
    spec.stimulus_freq_hz = 5e6;
    auto sm = builder().build(spec);
    EXPECT_EQ(sm.assembled.size(), sm.high_instrs + sm.low_instrs);
    EXPECT_EQ(sm.assembled[0]->mnemonic, "CIB");
    EXPECT_EQ(sm.assembled[sm.assembled.size() - 1]->mnemonic, "SRNM");
}

TEST(StressmarkBuilderTest, DeltaPowerPositive)
{
    auto sm = builder().build({});
    EXPECT_GT(sm.deltaPower(), 1.0);
}

TEST(StressmarkBuilderTest, VeryHighFrequencyAttenuatesOrHolds)
{
    // At 100 MHz the phases are shorter than the pipeline settling
    // granularity; the effective deltaI must not exceed the
    // steady-state one.
    auto slow = builder().build({.stimulus_freq_hz = 1e6});
    auto fast = builder().build({.stimulus_freq_hz = 100e6});
    EXPECT_LE(fast.deltaPower(), slow.deltaPower() * 1.02);
    EXPECT_GT(fast.high_instrs, 0u);
    EXPECT_GT(fast.low_instrs, 0u);
}

TEST(StressmarkBuilderTest, ActivityAlternatesPhases)
{
    vn::StressmarkSpec spec;
    spec.stimulus_freq_hz = 1e6; // 500 ns half period
    spec.synchronized = false;
    spec.consecutive_events = 3;
    auto sm = builder().build(spec);
    auto activity = sm.activity();

    // First 500 ns at high power.
    double p0 = activity.advance(400e-9);
    EXPECT_NEAR(p0, sm.high_power, 0.05);
    activity.advance(100e-9);
    double p1 = activity.advance(400e-9);
    EXPECT_NEAR(p1, sm.low_power, 0.05);
}

TEST(StressmarkBuilderTest, ActivityHonoursStartDelay)
{
    auto sm = builder().build({.stimulus_freq_hz = 1e6,
                               .consecutive_events = 2,
                               .synchronized = false});
    auto activity = sm.activity(200e-9);
    EXPECT_NEAR(activity.advance(150e-9), sm.low_power, 0.05);
}

TEST(StressmarkBuilderTest, SyncSpecPropagates)
{
    vn::StressmarkSpec spec;
    spec.synchronized = true;
    spec.misalignment_ticks = 3;
    auto sm = builder().build(spec);
    auto activity = sm.activity();
    EXPECT_TRUE(activity.synchronized());
    // Misaligned by 3 ticks: the first 187.5 ns are spin.
    EXPECT_NEAR(activity.advance(180e-9), sm.low_power, 0.05);
}

TEST(StressmarkBuilderTest, EndToEndNoiseOnChip)
{
    // The assembled stressmark actually shakes the chip model.
    vn::ChipModel chip;
    vn::StressmarkSpec spec;
    spec.stimulus_freq_hz = 2.6e6;
    spec.consecutive_events = 200;
    auto sm = builder().build(spec);

    std::array<vn::CoreActivity, vn::kNumCores> w = {
        sm.activity(), sm.activity(), sm.activity(),
        sm.activity(), sm.activity(), sm.activity()};
    auto r = chip.run(w, 30e-6);
    EXPECT_GT(r.maxP2p(), 30.0);
}

TEST(StressmarkBuilderTest, InvalidSpecIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(builder().build({.stimulus_freq_hz = 0.0}),
                 vn::FatalError);
    vn::StressmarkSpec bad;
    bad.synchronized = true;
    bad.sync_interval_ticks = 0;
    EXPECT_THROW(builder().build(bad), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(StressmarkBuilderTest, EmptySequenceIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::Program empty;
    EXPECT_THROW(vn::StressmarkBuilder(core(), empty, lowSeq()),
                 vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
