/**
 * @file
 * EPI profiler tests: the Table I reproduction at reduced cost.
 */

#include <gtest/gtest.h>

#include "stressmark/epi.hh"
#include "util/logging.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Shared reduced-cost profile (profiling 1301 instructions once). */
const std::vector<vn::EpiEntry> &
profile()
{
    static auto p = [] {
        vn::EpiProfiler profiler(core(), 300);
        return profiler.profile();
    }();
    return p;
}

TEST(EpiProfilerTest, CoversWholeIsa)
{
    EXPECT_EQ(profile().size(), vn::kIsaSize);
}

TEST(EpiProfilerTest, SortedDescending)
{
    const auto &p = profile();
    for (size_t i = 1; i < p.size(); ++i)
        ASSERT_GE(p[i - 1].power, p[i].power) << i;
}

TEST(EpiProfilerTest, TableOneTopFive)
{
    // Paper Table I: CIB, CRB, BXHG, CGIB, CHHSI with normalized powers
    // 1.58, 1.57, 1.57, 1.55, 1.55.
    auto top = vn::epiTop(profile(), 5);
    ASSERT_EQ(top.size(), 5u);
    EXPECT_EQ(top[0].instr->mnemonic, "CIB");
    EXPECT_EQ(top[1].instr->mnemonic, "CRB");
    EXPECT_EQ(top[2].instr->mnemonic, "BXHG");
    EXPECT_EQ(top[3].instr->mnemonic, "CGIB");
    EXPECT_EQ(top[4].instr->mnemonic, "CHHSI");
    EXPECT_NEAR(top[0].normalized, 1.58, 0.01);
    EXPECT_NEAR(top[4].normalized, 1.55, 0.01);
}

TEST(EpiProfilerTest, TableOneBottomFive)
{
    // Paper Table I ranks 1297-1301: DDTRA, MXTRA, MDTRA, STCK, SRNM
    // with normalized powers 1.01, 1.01, 1, 1, 1.
    auto bottom = vn::epiBottom(profile(), 5);
    ASSERT_EQ(bottom.size(), 5u);
    EXPECT_EQ(bottom[0].instr->mnemonic, "DDTRA");
    EXPECT_EQ(bottom[1].instr->mnemonic, "MXTRA");
    EXPECT_EQ(bottom[2].instr->mnemonic, "MDTRA");
    EXPECT_EQ(bottom[3].instr->mnemonic, "STCK");
    EXPECT_EQ(bottom[4].instr->mnemonic, "SRNM");
    EXPECT_NEAR(bottom[0].normalized, 1.01, 0.01);
    EXPECT_NEAR(bottom[4].normalized, 1.00, 1e-9);
}

TEST(EpiProfilerTest, NormalizationAnchoredAtFloor)
{
    const auto &p = profile();
    EXPECT_DOUBLE_EQ(p.back().normalized, 1.0);
    for (const auto &e : p)
        EXPECT_GE(e.normalized, 1.0);
}

TEST(EpiProfilerTest, LongLatencyBeatsNopForMinimum)
{
    // The paper's observation: serializing/long-latency instructions
    // measure lower power than high-IPC cheap ones.
    const auto &p = profile();
    double srnm = 0.0, cib = 0.0;
    for (const auto &e : p) {
        if (e.instr->mnemonic == "SRNM")
            srnm = e.power;
        if (e.instr->mnemonic == "CIB")
            cib = e.power;
    }
    EXPECT_LT(srnm, cib);
}

TEST(EpiProfilerTest, MeasureSingleInstruction)
{
    vn::EpiProfiler profiler(core(), 200);
    auto entry = profiler.measure(vn::instrTable().find("CIB"));
    EXPECT_NEAR(entry.ipc, 2.0, 0.1);
    EXPECT_GT(entry.power, 2.5);
}

TEST(EpiProfilerTest, ZeroRepsIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::EpiProfiler(core(), 0), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
