/**
 * @file
 * Sequence-search pipeline tests (the paper's Fig. 5 funnel) at
 * reduced cost.
 */

#include <gtest/gtest.h>

#include "stressmark/sequences.hh"
#include "util/logging.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

const std::vector<vn::EpiEntry> &
profile()
{
    static auto p = [] {
        vn::EpiProfiler profiler(core(), 200);
        return profiler.profile();
    }();
    return p;
}

vn::SequenceSearchParams
cheapParams()
{
    vn::SequenceSearchParams params;
    params.num_candidates = 6;
    params.sequence_length = 4;
    params.ipc_filter_keep = 24;
    params.ipc_eval_instrs = 200;
    params.power_eval_instrs = 800;
    return params;
}

TEST(SequenceSearchTest, CandidatesComeFromHotCategories)
{
    vn::SequenceSearch search(core(), cheapParams());
    auto candidates = search.selectCandidates(profile());
    ASSERT_EQ(candidates.size(), 6u);
    for (const auto *instr : candidates) {
        EXPECT_EQ(instr->issue, vn::IssueClass::Pipelined)
            << instr->mnemonic;
    }
    // The hottest instruction of all (CIB) must be among them.
    bool has_cib = false;
    for (const auto *instr : candidates)
        has_cib |= instr->mnemonic == "CIB";
    EXPECT_TRUE(has_cib);
}

TEST(SequenceSearchTest, UarchFilterRejectsStallsAndBranchFloods)
{
    vn::SequenceSearch search(core(), cheapParams());
    const auto &table = vn::instrTable();
    const auto *cib = &table.find("CIB");
    const auto *chhsi = &table.find("CHHSI");
    const auto *load = &table.find("L");
    const auto *srnm = &table.find("SRNM");

    // Balanced cross-unit mix: sustainable at full width.
    EXPECT_TRUE(search.passesUarchFilter({cib, chhsi, load, chhsi}));
    // Serializing instruction kills the group size.
    EXPECT_FALSE(search.passesUarchFilter({cib, chhsi, load, srnm}));
    // Too many branches.
    EXPECT_FALSE(search.passesUarchFilter({cib, cib, cib, load}));
    // Unit oversubscription: four FXU uops cannot sustain width 3 on
    // two FXU pipes.
    EXPECT_FALSE(
        search.passesUarchFilter({chhsi, chhsi, chhsi, chhsi}));
}

TEST(SequenceSearchTest, FunnelShrinksMonotonically)
{
    vn::SequenceSearch search(core(), cheapParams());
    auto result = search.run(profile());
    EXPECT_EQ(result.combinations_total, 1296u); // 6^4
    EXPECT_LT(result.after_uarch_filter, result.combinations_total);
    EXPECT_GT(result.after_uarch_filter, 0u);
    EXPECT_LE(result.after_ipc_filter, 24u);
    EXPECT_EQ(result.best_sequence.size(), 4u);
}

TEST(SequenceSearchTest, BestBeatsSingleInstructionBenchmarks)
{
    vn::SequenceSearch search(core(), cheapParams());
    auto result = search.run(profile());
    // The discovered max-power sequence out-powers the hottest
    // single-instruction micro-benchmark (CIB), as in the paper.
    EXPECT_GT(result.best_power, profile().front().power * 1.05);
    EXPECT_GT(result.best_ipc, 2.5);
}

TEST(SequenceSearchTest, MinPowerSequenceIsFloorInstruction)
{
    auto min_seq = vn::makeMinPowerSequence(profile(), 6);
    ASSERT_EQ(min_seq.size(), 6u);
    EXPECT_EQ(min_seq[0]->mnemonic, profile().back().instr->mnemonic);
}

TEST(SequenceSearchTest, MediumSequenceHitsTarget)
{
    vn::SequenceSearch search(core(), cheapParams());
    auto result = search.run(profile());
    auto min_seq = vn::makeMinPowerSequence(profile(), 6);

    double p_max = result.best_power;
    double p_min =
        core().run(min_seq, 2000, 200000).avg_power;
    double target = 0.5 * (p_max + p_min);

    auto medium = vn::makeMediumPowerSequence(core(), result.best_sequence,
                                              profile(), target);
    double p_med = core()
                       .run(medium, std::max<size_t>(medium.size() * 8,
                                                     2000),
                            1000000)
                       .avg_power;
    EXPECT_NEAR(p_med, target, 0.05 * target);
}

TEST(SequenceSearchTest, OversizedDesignSpaceIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::SequenceSearchParams params;
    params.num_candidates = 30;
    params.sequence_length = 10;
    EXPECT_THROW(vn::SequenceSearch(core(), params), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
