/**
 * @file
 * Genetic sequence-search tests.
 */

#include <gtest/gtest.h>

#include "isa/table.hh"
#include "stressmark/genetic.hh"
#include "util/logging.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

vn::GeneticSearchParams
cheapParams()
{
    vn::GeneticSearchParams p;
    p.population = 16;
    p.generations = 8;
    p.sequence_length = 4;
    p.eval_instrs = 240;
    return p;
}

TEST(GeneticSearchTest, AlphabetIsPipelinedOnly)
{
    auto alphabet = vn::pipelinedAlphabet();
    EXPECT_GT(alphabet.size(), 500u);
    for (const auto *d : alphabet)
        ASSERT_EQ(d->issue, vn::IssueClass::Pipelined) << d->mnemonic;
}

TEST(GeneticSearchTest, DeterministicForSeed)
{
    vn::GeneticSequenceSearch search(core(), cheapParams());
    auto alphabet = vn::pipelinedAlphabet();
    auto a = search.run(alphabet);
    auto b = search.run(alphabet);
    EXPECT_EQ(a.best.toString(), b.best.toString());
    EXPECT_DOUBLE_EQ(a.best_power, b.best_power);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(GeneticSearchTest, BestNeverDegradesAcrossGenerations)
{
    // Elitism makes the per-generation best monotone non-decreasing.
    vn::GeneticSequenceSearch search(core(), cheapParams());
    auto r = search.run(vn::pipelinedAlphabet());
    ASSERT_GE(r.best_per_generation.size(), 2u);
    for (size_t g = 1; g < r.best_per_generation.size(); ++g)
        EXPECT_GE(r.best_per_generation[g],
                  r.best_per_generation[g - 1] - 1e-12)
            << g;
}

TEST(GeneticSearchTest, FindsHighPowerSequence)
{
    // Even the cheap GA should get well above the static floor and
    // close to the structural power ceiling.
    vn::GeneticSearchParams p = cheapParams();
    p.population = 24;
    p.generations = 16;
    p.sequence_length = 6;
    vn::GeneticSequenceSearch search(core(), p);
    auto r = search.run(vn::pipelinedAlphabet());
    EXPECT_GT(r.best_power, 3.0); // static is 1.86; max mix ~3.44
    EXPECT_GT(r.best_ipc, 2.4);
    EXPECT_EQ(r.best.size(), 6u);
}

TEST(GeneticSearchTest, EvaluationBudgetAccounted)
{
    auto p = cheapParams();
    vn::GeneticSequenceSearch search(core(), p);
    auto r = search.run(vn::pipelinedAlphabet());
    // population + generations * (population - elite) evaluations.
    size_t expected =
        static_cast<size_t>(p.population) +
        static_cast<size_t>(p.generations) *
            static_cast<size_t>(p.population - p.elite);
    EXPECT_EQ(r.evaluations, expected);
}

TEST(GeneticSearchTest, TinyAlphabetStillWorks)
{
    const auto &table = vn::instrTable();
    std::vector<const vn::InstrDesc *> alphabet{
        &table.find("CIB"), &table.find("CHHSI"), &table.find("L")};
    vn::GeneticSequenceSearch search(core(), cheapParams());
    auto r = search.run(alphabet);
    EXPECT_GT(r.best_power, 2.5);
}

TEST(GeneticSearchTest, InvalidParamsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::GeneticSearchParams p;
    p.population = 2;
    EXPECT_THROW(vn::GeneticSequenceSearch(core(), p), vn::FatalError);
    vn::GeneticSearchParams q;
    q.elite = 1000;
    EXPECT_THROW(vn::GeneticSequenceSearch(core(), q), vn::FatalError);
    vn::GeneticSequenceSearch ok(core(), cheapParams());
    EXPECT_THROW(ok.run({}), vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
