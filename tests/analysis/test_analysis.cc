/**
 * @file
 * Analysis-harness tests: each experiment driver is exercised at
 * reduced scale and checked against the paper's qualitative claims.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/guardband.hh"
#include "analysis/mapping.hh"
#include "analysis/margins.hh"
#include "analysis/sweeps.hh"
#include "util/logging.hh"

namespace
{

const vn::CoreModel &
core()
{
    static vn::CoreModel c;
    return c;
}

/** Cheap kit shared by all analysis tests. */
const vn::StressmarkKit &
kit()
{
    static auto k = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams params;
        params.epi_reps = 200;
        params.search.num_candidates = 6;
        params.search.sequence_length = 4;
        params.search.ipc_filter_keep = 16;
        params.search.ipc_eval_instrs = 160;
        params.search.power_eval_instrs = 600;
        vn::StressmarkKit built(core(), params);
        vn::setQuiet(prev);
        return built;
    }();
    return k;
}

vn::AnalysisContext
context()
{
    vn::AnalysisContext ctx;
    ctx.kit = &kit();
    ctx.window = 8e-6;
    ctx.unsync_draws = 2;
    ctx.consecutive_events = 500;
    return ctx;
}

TEST(LogspaceTest, EndpointsAndSpacing)
{
    auto f = vn::logspace(1e3, 1e6, 4);
    ASSERT_EQ(f.size(), 4u);
    EXPECT_NEAR(f.front(), 1e3, 1e-6);
    EXPECT_NEAR(f.back(), 1e6, 1e-3);
    EXPECT_NEAR(f[1] / f[0], 10.0, 1e-9);
}

TEST(LogspaceTest, InvalidArgsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::logspace(1e3, 1e2, 4), vn::FatalError);
    EXPECT_THROW(vn::logspace(1e3, 1e6, 1), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(FreqSweepTest, SyncSweepShowsNoiseEverywhere)
{
    auto ctx = context();
    std::vector<double> freqs{4e5, 2.6e6, 2e7};
    auto points = vn::sweepStimulusFrequency(ctx, freqs, true);
    ASSERT_EQ(points.size(), 3u);
    for (const auto &p : points) {
        EXPECT_GT(p.max_p2p, 10.0) << p.freq_hz;
        EXPECT_LT(p.min_v, ctx.chip_config.pdn.vnom);
    }
}

TEST(FreqSweepTest, ResonanceDeeperThanHighFrequency)
{
    auto ctx = context();
    std::vector<double> freqs{2.6e6, 3e7};
    auto points = vn::sweepStimulusFrequency(ctx, freqs, true);
    EXPECT_LT(points[0].min_v, points[1].min_v);
}

TEST(FreqSweepTest, SyncBeatsUnsync)
{
    // The headline claim of Fig. 9 vs Fig. 7a.
    auto ctx = context();
    std::vector<double> freqs{2.6e6};
    auto synced = vn::sweepStimulusFrequency(ctx, freqs, true);
    auto unsynced = vn::sweepStimulusFrequency(ctx, freqs, false);
    EXPECT_GT(synced[0].max_p2p, unsynced[0].max_p2p);
}

TEST(FreqSweepTest, UnsyncShowsResonancePeak)
{
    // Fig. 7a: the free-running sweep peaks in the die band.
    auto ctx = context();
    ctx.unsync_draws = 3;
    std::vector<double> freqs{2.6e6, 4e7};
    auto points = vn::sweepStimulusFrequency(ctx, freqs, false);
    EXPECT_GT(points[0].max_p2p, points[1].max_p2p);
}

TEST(FreqSweepTest, ParallelSweepMatchesSerialBitwise)
{
    // The campaign runtime promises a parallel sweep is bit-identical
    // to a serial one (per-job derived seeds, ordered results) — check
    // it on the RNG-dependent unsync path.
    auto ctx = context();
    std::vector<double> freqs{4e5, 2.6e6, 2e7};
    ctx.campaign.jobs = 1;
    auto serial = vn::sweepStimulusFrequency(ctx, freqs, false);
    ctx.campaign.jobs = 3;
    auto parallel = vn::sweepStimulusFrequency(ctx, freqs, false);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].freq_hz, parallel[i].freq_hz);
        EXPECT_EQ(serial[i].max_p2p, parallel[i].max_p2p);
        EXPECT_EQ(serial[i].min_v, parallel[i].min_v);
    }
}

TEST(MisalignmentTest, SmallMisalignmentReducesNoise)
{
    // Fig. 10: one TOD tick of spread already cuts the sync bonus.
    auto ctx = context();
    std::vector<uint64_t> ticks{0, 2, 10};
    auto points = vn::sweepMisalignment(ctx, 2.6e6, ticks, 2);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_GT(points[0].avg_max_p2p, points[2].avg_max_p2p);
    EXPECT_GE(points[0].avg_max_p2p, points[1].avg_max_p2p);
    EXPECT_NEAR(points[1].max_misalignment_s, 125e-9, 1e-12);
}

TEST(MappingTest, DeltaIFractionAndActiveCores)
{
    vn::Mapping m{vn::WorkloadClass::Max,    vn::WorkloadClass::Medium,
                  vn::WorkloadClass::Idle,   vn::WorkloadClass::Max,
                  vn::WorkloadClass::Medium, vn::WorkloadClass::Idle};
    EXPECT_DOUBLE_EQ(vn::deltaIFraction(m), 0.5);
    EXPECT_EQ(vn::activeCores(m), 4);
}

TEST(MappingTest, NoiseOrderedByWorkloadIntensity)
{
    auto ctx = context();
    vn::MappingStudy study(ctx, 2.6e6);

    vn::Mapping idle{};
    idle.fill(vn::WorkloadClass::Idle);
    vn::Mapping medium{};
    medium.fill(vn::WorkloadClass::Medium);
    vn::Mapping maxed{};
    maxed.fill(vn::WorkloadClass::Max);

    auto r_idle = study.run(idle);
    auto r_med = study.run(medium);
    auto r_max = study.run(maxed);

    EXPECT_LT(r_idle.max_p2p, r_med.max_p2p);
    EXPECT_LT(r_med.max_p2p, r_max.max_p2p);
    EXPECT_EQ(r_max.n_max, 6);
    EXPECT_EQ(r_med.n_medium, 6);
    EXPECT_DOUBLE_EQ(r_max.delta_i_fraction, 1.0);
    EXPECT_DOUBLE_EQ(r_med.delta_i_fraction, 0.5);
}

TEST(MappingTest, CorrelationMatrixFromResults)
{
    auto ctx = context();
    vn::MappingStudy study(ctx, 2.6e6);

    // A few varied mappings are enough for a meaningful matrix.
    std::vector<vn::MappingResult> results;
    for (int mask : {0x01, 0x07, 0x15, 0x2A, 0x3F, 0x38, 0x09}) {
        vn::Mapping m{};
        for (int c = 0; c < vn::kNumCores; ++c) {
            m[c] = (mask >> c) & 1 ? vn::WorkloadClass::Max
                                   : vn::WorkloadClass::Idle;
        }
        results.push_back(study.run(m));
    }
    auto matrix = vn::noiseCorrelationMatrix(results);
    ASSERT_EQ(matrix.size(), 6u);
    for (int i = 0; i < 6; ++i) {
        EXPECT_NEAR(matrix[i][i], 1.0, 1e-9);
        for (int j = 0; j < 6; ++j) {
            EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
            EXPECT_GT(matrix[i][j], 0.0); // noise is global (paper >0.91)
        }
    }
}

TEST(MappingTest, DetectClustersOnBlockMatrix)
{
    // Hand-built block-correlation matrix: cores {0,2,4} vs {1,3,5}.
    std::vector<std::vector<double>> m(6, std::vector<double>(6, 0.92));
    for (int i = 0; i < 6; ++i)
        m[i][i] = 1.0;
    for (int i : {0, 2, 4})
        for (int j : {0, 2, 4})
            if (i != j)
                m[i][j] = 0.99;
    for (int i : {1, 3, 5})
        for (int j : {1, 3, 5})
            if (i != j)
                m[i][j] = 0.99;

    auto clusters = vn::detectClusters(m);
    EXPECT_EQ(clusters[0], 0);
    EXPECT_EQ(clusters[2], 0);
    EXPECT_EQ(clusters[4], 0);
    EXPECT_EQ(clusters[1], 1);
    EXPECT_EQ(clusters[3], 1);
    EXPECT_EQ(clusters[5], 1);
}

TEST(MappingTest, OpportunityBestNotAboveWorst)
{
    auto ctx = context();
    ctx.window = 6e-6;
    vn::MappingStudy study(ctx, 2.6e6);
    auto opportunities = vn::mappingOpportunity(study);
    ASSERT_EQ(opportunities.size(), 6u);
    for (const auto &o : opportunities) {
        EXPECT_LE(o.best_noise, o.worst_noise) << o.workloads;
        EXPECT_GE(o.reduction(), 0.0);
    }
    // k = 6 has a single mapping: best == worst.
    EXPECT_DOUBLE_EQ(opportunities[5].best_noise,
                     opportunities[5].worst_noise);
    // More stressmarks -> more worst-case noise.
    EXPECT_GT(opportunities[5].worst_noise, opportunities[0].worst_noise);
}

TEST(MarginsTest, SingleSyncEventBeatsUnsync)
{
    // Fig. 12: one synchronized deltaI event already consumes most of
    // the margin; without synchronization the margin more than doubles.
    auto ctx = context();
    std::vector<double> freqs{2.6e6};
    std::vector<int> events{1, 0}; // 1 sync event vs infinity/no-sync
    auto points = vn::consecutiveEventsStudy(ctx, freqs, events, 0.01);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_TRUE(points[0].failed);
    EXPECT_TRUE(points[1].failed);
    EXPECT_GT(points[1].bias_at_failure,
              points[0].bias_at_failure * 1.5);
}

TEST(MarginsTest, EventCountSecondaryFactor)
{
    // 1 vs 100 consecutive synchronized events: margins within a step
    // or two of each other.
    auto ctx = context();
    std::vector<double> freqs{2.6e6};
    std::vector<int> events{1, 100};
    auto points = vn::consecutiveEventsStudy(ctx, freqs, events, 0.01);
    EXPECT_NEAR(points[0].bias_at_failure, points[1].bias_at_failure,
                0.021);
}

TEST(GuardbandTest, SafeBiasDecreasesWithUtilization)
{
    auto ctx = context();
    ctx.window = 6e-6;
    vn::UtilizationTraceParams trace;
    trace.intervals = 500;
    auto r = vn::guardbandStudy(ctx, trace);

    for (int k = 1; k <= vn::kNumCores; ++k) {
        EXPECT_LE(r.safe_bias[k], r.safe_bias[k - 1] + 1e-12) << k;
        EXPECT_GE(r.worst_droop[k], r.worst_droop[k - 1] - 1e-9) << k;
    }
    EXPECT_GT(r.safe_bias[0], r.safe_bias[vn::kNumCores]);
}

TEST(GuardbandTest, DynamicPolicySaves)
{
    auto ctx = context();
    ctx.window = 6e-6;
    vn::UtilizationTraceParams trace;
    trace.intervals = 500;
    auto r = vn::guardbandStudy(ctx, trace);

    EXPECT_LE(r.avg_voltage_dynamic, r.avg_voltage_static + 1e-12);
    EXPECT_GE(r.voltageSaving(), 0.0);
    EXPECT_GE(r.powerSaving(), 0.0);
    EXPECT_LT(r.powerSaving(), 0.5);

    size_t total = 0;
    for (size_t h : r.histogram)
        total += h;
    EXPECT_EQ(total, trace.intervals);
}

} // namespace
