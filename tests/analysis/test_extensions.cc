/**
 * @file
 * Tests for the extension analyses: droop spectrum, customer-code
 * workloads, and the online noise-aware scheduler.
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/customer.hh"
#include "analysis/scheduler.hh"
#include "analysis/spectrum.hh"
#include "stressmark/kit.hh"
#include "util/logging.hh"

namespace
{

vn::CoreActivity
squareWave(double freq_hz, double high, double low)
{
    std::vector<vn::ActivityPhase> loop;
    for (int i = 0; i < 200; ++i) {
        loop.push_back({high, 0.5 / freq_hz});
        loop.push_back({low, 0.5 / freq_hz});
    }
    return vn::CoreActivity(loop, vn::SyncSpec{64000, 0, low});
}

TEST(DroopSpectrumTest, FundamentalAtStimulusFrequency)
{
    vn::ChipModel chip;
    double f0 = 2.0e6;
    auto wave = squareWave(f0, 3.44, 1.87);
    std::array<vn::CoreActivity, vn::kNumCores> w = {wave, wave, wave,
                                                     wave, wave, wave};
    auto spectrum = vn::droopSpectrum(chip, w, 30e-6, 0);

    double fund = spectrum.bandFrequency(0.5 * f0, 1.5 * f0);
    EXPECT_NEAR(fund, f0, 0.12 * f0);

    // Fundamental dominates the 3rd harmonic, which dominates the 5th
    // (square-wave drive through a low-pass-ish PDN).
    double h1 = spectrum.bandAmplitude(0.8 * f0, 1.2 * f0);
    double h3 = spectrum.bandAmplitude(2.8 * f0, 3.2 * f0);
    double h5 = spectrum.bandAmplitude(4.8 * f0, 5.2 * f0);
    EXPECT_GT(h1, 3.0 * h3);
    EXPECT_GT(h3, h5);
    EXPECT_GT(h1, 0.02); // tens of mV at the fundamental
}

TEST(DroopSpectrumTest, OffResonanceEdgesStillRingTheDieBand)
{
    // A low-frequency square's edges deposit energy in the die band -
    // the physical reason sync matters at every stimulus frequency.
    vn::ChipModel chip;
    double f0 = 100e3;
    auto wave = squareWave(f0, 3.44, 1.87);
    std::array<vn::CoreActivity, vn::kNumCores> w = {wave, wave, wave,
                                                     wave, wave, wave};
    auto spectrum = vn::droopSpectrum(chip, w, 60e-6, 0);
    // Energy near 2-3 MHz exceeds the immediate neighbourhood above it.
    double die_band = spectrum.bandAmplitude(1.8e6, 3.2e6);
    double above = spectrum.bandAmplitude(6e6, 10e6);
    EXPECT_GT(die_band, above);
}

TEST(DroopSpectrumTest, InvalidArgsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::ChipModel chip;
    auto idle = chip.idleActivity();
    std::array<vn::CoreActivity, vn::kNumCores> w = {idle, idle, idle,
                                                     idle, idle, idle};
    EXPECT_THROW(vn::droopSpectrum(chip, w, 30e-6, 9), vn::FatalError);
    EXPECT_THROW(vn::droopSpectrum(chip, w, 1e-6, 0), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(CustomerCodeTest, StaysWithinEnvelope)
{
    vn::CustomerCodeParams params;
    params.min_power = 1.87;
    params.max_power = 3.44;
    params.envelope = 0.8;
    auto activity = vn::makeCustomerActivity(params, 5);

    double ceiling = params.min_power +
                     0.8 * (params.max_power - params.min_power);
    for (int i = 0; i < 20000; ++i) {
        double p = activity.advance(10e-9);
        ASSERT_GE(p, params.min_power - 1e-9);
        ASSERT_LE(p, ceiling + 1e-9);
    }
}

TEST(CustomerCodeTest, SeedsProduceDifferentPrograms)
{
    vn::CustomerCodeParams params;
    params.min_power = 1.0;
    params.max_power = 3.0;
    auto a = vn::makeCustomerActivity(params, 1);
    auto b = vn::makeCustomerActivity(params, 2);
    int differs = 0;
    for (int i = 0; i < 1000; ++i)
        differs += a.advance(50e-9) != b.advance(50e-9);
    EXPECT_GT(differs, 100);
}

TEST(CustomerCodeTest, InvalidParamsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    vn::CustomerCodeParams bad;
    bad.min_power = 2.0;
    bad.max_power = 1.0;
    EXPECT_THROW(vn::makeCustomerActivity(bad, 1), vn::FatalError);
    vn::CustomerCodeParams bad2;
    bad2.min_power = 1.0;
    bad2.max_power = 2.0;
    bad2.envelope = 1.5;
    EXPECT_THROW(vn::makeCustomerActivity(bad2, 1), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(SchedulerTest, AwareNeverWorseThanNaive)
{
    // A cheap real oracle: tiny windows are fine, only the *relative*
    // placement costs matter.
    static const vn::CoreModel core;
    static const auto kit = [] {
        bool prev = vn::setQuiet(true);
        vn::StressmarkKitParams p;
        p.epi_reps = 150;
        p.search.num_candidates = 5;
        p.search.sequence_length = 4;
        p.search.ipc_filter_keep = 8;
        p.search.ipc_eval_instrs = 120;
        p.search.power_eval_instrs = 400;
        vn::StressmarkKit k(core, p);
        vn::setQuiet(prev);
        return k;
    }();
    vn::AnalysisContext ctx;
    ctx.kit = &kit;
    ctx.window = 5e-6;
    vn::MappingStudy study(ctx, 2.6e6);
    vn::PlacementOracle oracle(study);

    // Oracle sanity: empty chip is quiet, full chip is the noisiest.
    EXPECT_EQ(oracle.noise(0), 0.0);
    for (unsigned mask = 1; mask < vn::PlacementOracle::mask_count;
         ++mask) {
        EXPECT_LE(oracle.noise(mask), oracle.noise(0x3F) + 1e-9);
    }

    vn::SchedulerSimParams params;
    params.events = 2000;
    auto r = vn::schedulerSimulation(oracle, params);
    EXPECT_GT(r.placements, 100u);
    EXPECT_LE(r.aware_mean, r.naive_mean + 1e-9);
    EXPECT_LE(r.aware_peak, r.naive_peak + 1e-9);
}

} // namespace
