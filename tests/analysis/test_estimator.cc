/**
 * @file
 * Frequency-domain estimator tests, including the cross-validation
 * against the time-domain transient solver: two independent numerical
 * methods must agree on square-wave droop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/estimator.hh"
#include "circuit/transient.hh"
#include "util/logging.hh"

namespace
{

const vn::ChipPdn &
pdn()
{
    static auto p = vn::buildZec12Pdn();
    return p;
}

/**
 * Time-domain reference: drive square-wave port currents directly on
 * the netlist and measure the steady-state p2p at a core node.
 */
double
transientP2p(const std::vector<vn::SquareSource> &sources, int observe,
             double freq_hz)
{
    const double dt = std::min(1e-9, 0.02 / freq_hz);
    vn::TransientSolver sim(pdn().netlist, dt);
    std::vector<double> load(pdn().portCount(), 0.0);
    sim.initDcOperatingPoint(load);

    double period = 1.0 / freq_hz;
    // Let the response settle for several periods (and at least the
    // board time constant), then measure over whole periods.
    double settle = std::max(6.0 * period, 60e-6);
    double measure = 4.0 * period;
    double v_lo = 1e9, v_hi = -1e9;
    double t_end = settle + measure;
    while (sim.time() < t_end) {
        double t = sim.time();
        for (const auto &src : sources) {
            double phase = std::fmod(
                freq_hz * t + src.phase / (2.0 * M_PI), 1.0);
            load[src.port] = phase < 0.5 ? src.delta_amps : 0.0;
        }
        sim.step(load);
        if (sim.time() >= settle) {
            double v = sim.nodeVoltage(pdn().core_node[observe]);
            v_lo = std::min(v_lo, v);
            v_hi = std::max(v_hi, v);
        }
    }
    return v_hi - v_lo;
}

TEST(EstimatorTest, MatchesTransientAtResonance)
{
    std::vector<vn::SquareSource> sources;
    for (int c = 0; c < vn::kNumCores; ++c)
        sources.push_back({pdn().core_port[c], 22.0, 0.0});

    double f = 2.4e6;
    auto est = vn::estimateSquareWaveNoise(pdn(), 0, sources, f);
    double ref = transientP2p(sources, 0, f);
    EXPECT_NEAR(est.p2p_volts, ref, 0.15 * ref);
    EXPECT_GT(est.p2p_volts, 0.05); // the resonant case is large
}

/** Property sweep: estimator vs transient across the spectrum. */
class EstimatorAgreement : public ::testing::TestWithParam<double>
{};

TEST_P(EstimatorAgreement, WithinTolerance)
{
    double f = GetParam();
    std::vector<vn::SquareSource> sources{
        {pdn().core_port[0], 25.0, 0.0},
        {pdn().core_port[3], 25.0, 0.0}};
    auto est = vn::estimateSquareWaveNoise(pdn(), 0, sources, f, 31);
    double ref = transientP2p(sources, 0, f);
    EXPECT_NEAR(est.p2p_volts, ref, 0.2 * ref + 1e-4) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, EstimatorAgreement,
                         ::testing::Values(100e3, 400e3, 1e6, 2.4e6,
                                           8e6));

TEST(EstimatorTest, AlignedBeatsAntiphase)
{
    // Two sources in antiphase partially cancel at the shared rail.
    std::vector<vn::SquareSource> aligned{
        {pdn().core_port[0], 20.0, 0.0},
        {pdn().core_port[2], 20.0, 0.0}};
    std::vector<vn::SquareSource> anti{
        {pdn().core_port[0], 20.0, 0.0},
        {pdn().core_port[2], 20.0, M_PI}};
    double f = 2.4e6;
    auto a = vn::estimateSquareWaveNoise(pdn(), 0, aligned, f);
    auto b = vn::estimateSquareWaveNoise(pdn(), 0, anti, f);
    EXPECT_GT(a.p2p_volts, 1.3 * b.p2p_volts);
}

TEST(EstimatorTest, ScalesLinearlyWithDeltaI)
{
    std::vector<vn::SquareSource> one{{pdn().core_port[0], 10.0, 0.0}};
    std::vector<vn::SquareSource> two{{pdn().core_port[0], 20.0, 0.0}};
    auto a = vn::estimateSquareWaveNoise(pdn(), 0, one, 2e6);
    auto b = vn::estimateSquareWaveNoise(pdn(), 0, two, 2e6);
    EXPECT_NEAR(b.p2p_volts, 2.0 * a.p2p_volts, 1e-9);
}

TEST(EstimatorTest, ResonancePeaksOverNeighbours)
{
    std::vector<vn::SquareSource> sources;
    for (int c = 0; c < vn::kNumCores; ++c)
        sources.push_back({pdn().core_port[c], 22.0, 0.0});
    auto at_res = vn::estimateSquareWaveNoise(pdn(), 0, sources, 2.4e6);
    auto above = vn::estimateSquareWaveNoise(pdn(), 0, sources, 30e6);
    EXPECT_GT(at_res.p2p_volts, above.p2p_volts);
}

TEST(EstimatorTest, InvalidArgsAreFatal)
{
    bool prev = vn::setThrowOnError(true);
    std::vector<vn::SquareSource> sources{{0, 1.0, 0.0}};
    EXPECT_THROW(
        vn::estimateSquareWaveNoise(pdn(), -1, sources, 1e6),
        vn::FatalError);
    EXPECT_THROW(vn::estimateSquareWaveNoise(pdn(), 0, sources, 0.0),
                 vn::FatalError);
    EXPECT_THROW(
        vn::estimateSquareWaveNoise(pdn(), 0, sources, 1e6, 0),
        vn::FatalError);
    vn::setThrowOnError(prev);
}

} // namespace
