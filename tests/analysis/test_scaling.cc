/**
 * @file
 * Tests for the droop-event statistics and the core-count scaling
 * study.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/events.hh"
#include "analysis/scaling.hh"
#include "circuit/ac.hh"
#include "util/logging.hh"

namespace
{

TEST(DroopEventsTest, CountsAndDurations)
{
    // 1 V baseline with two dips below 0.95 V: 3 samples and 5 samples.
    vn::Waveform w(1e-9);
    auto push_n = [&](int n, double v) {
        for (int i = 0; i < n; ++i)
            w.push(v);
    };
    push_n(10, 1.0);
    push_n(3, 0.94);
    push_n(10, 1.0);
    push_n(5, 0.90);
    push_n(10, 1.0);

    auto stats = vn::droopEvents(w, 0.95);
    EXPECT_EQ(stats.count, 2u);
    EXPECT_NEAR(stats.max_duration_s, 5e-9, 1e-15);
    EXPECT_NEAR(stats.mean_duration_s, 4e-9, 1e-15);
    EXPECT_NEAR(stats.max_depth_v, 0.05, 1e-12);
    EXPECT_NEAR(stats.total_below_s, 8e-9, 1e-15);
    EXPECT_NEAR(stats.duty, 8.0 / 38.0, 1e-9);
}

TEST(DroopEventsTest, EventTouchingTheEndCounts)
{
    vn::Waveform w(1e-9);
    w.push(1.0);
    w.push(0.9);
    w.push(0.9);
    auto stats = vn::droopEvents(w, 0.95);
    EXPECT_EQ(stats.count, 1u);
    EXPECT_NEAR(stats.max_duration_s, 2e-9, 1e-15);
}

TEST(DroopEventsTest, NoEventsBelowGenerousThreshold)
{
    vn::Waveform w(1e-9);
    for (int i = 0; i < 100; ++i)
        w.push(1.0 + 0.01 * std::sin(0.3 * i));
    auto stats = vn::droopEvents(w, 0.5);
    EXPECT_EQ(stats.count, 0u);
    EXPECT_EQ(stats.duty, 0.0);
}

TEST(ScalablePdnTest, MatchesFixedBuilderAtSixCores)
{
    // The 6-core instance of the generalized builder lands the same
    // resonant band as the fixed zEC12 builder.
    auto scalable = vn::buildScalablePdn(6);
    ASSERT_EQ(scalable.core_node.size(), 6u);
    vn::AcAnalysis ac(scalable.netlist);
    double res = ac.resonanceFrequency(scalable.core_port[0], 3e5, 3e7);

    auto fixed = vn::buildZec12Pdn();
    auto profile = vn::impedanceProfile(fixed, 0);
    EXPECT_NEAR(res, profile.die_resonance_hz,
                0.5 * profile.die_resonance_hz);
}

TEST(ScalablePdnTest, InvalidCoreCountIsFatal)
{
    bool prev = vn::setThrowOnError(true);
    EXPECT_THROW(vn::buildScalablePdn(4), vn::FatalError);
    EXPECT_THROW(vn::buildScalablePdn(0), vn::FatalError);
    EXPECT_THROW(vn::buildScalablePdn(21), vn::FatalError);
    vn::setThrowOnError(prev);
}

TEST(ScalingStudyTest, OpportunityGrowsWithCoreCount)
{
    // The paper's section VII-A prediction: more cores -> more
    // placement combinations -> larger best/worst spread.
    std::vector<int> counts{6, 12};
    auto points = vn::mappingOpportunityScaling(counts);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].placements, 20u);  // C(6,3)
    EXPECT_EQ(points[1].placements, 924u); // C(12,6)
    EXPECT_LE(points[0].best_noise_v, points[0].worst_noise_v);
    // Placement freedom explodes; the relative opportunity holds or
    // grows under fixed per-core variation.
    EXPECT_GT(points[1].opportunity(),
              0.6 * points[0].opportunity());
    EXPECT_GT(points[1].opportunity(), 0.0);
}

TEST(ScalingStudyTest, NoiseMagnitudesSane)
{
    std::vector<int> counts{6};
    auto points = vn::mappingOpportunityScaling(counts, 22.0);
    // Fundamental droop amplitude for 3 aligned 22 A squares through
    // a ~1 mOhm-scale network: tens of mV.
    EXPECT_GT(points[0].worst_noise_v, 0.005);
    EXPECT_LT(points[0].worst_noise_v, 0.2);
    EXPECT_GT(points[0].die_resonance_hz, 5e5);
    EXPECT_LT(points[0].die_resonance_hz, 1e7);
}

} // namespace
