/**
 * @file
 * Utilization-based dynamic voltage guard-banding (section VII-B): the
 * firmware watches how many cores are enabled and trims the supply to
 * the worst-case droop bound of that utilization level instead of the
 * all-cores worst case.
 */

#include <cstdio>
#include <iostream>

#include "vnoise/vnoise.hh"

int
main()
{
    using namespace vn;

    CoreModel core;
    StressmarkKit kit =
        StressmarkKit::cached(core, outputPath("vnoise_kit.cache"));

    AnalysisContext ctx;
    ctx.kit = &kit;
    ctx.window = 12e-6;

    UtilizationTraceParams trace;
    trace.intervals = 4000;
    trace.mean_active_cores = 2.5; // a partially loaded machine
    auto r = guardbandStudy(ctx, trace);

    std::printf("worst-case droop bound and safe undervolt per "
                "utilization level:\n");
    TextTable table({"Active cores", "Worst droop (mV)", "Safe bias",
                     "Intervals"});
    for (int k = 0; k <= kNumCores; ++k) {
        table.addRow(
            {TextTable::num(static_cast<long long>(k)),
             TextTable::num(r.worst_droop[k] * 1e3, 1),
             TextTable::num(r.safe_bias[k] * 100.0, 2) + "%",
             TextTable::num(static_cast<long long>(r.histogram[k]))});
    }
    table.print(std::cout);

    std::printf("\nstatic policy (always worst-case margin): avg supply"
                " %.4f V\n",
                r.avg_voltage_static);
    std::printf("dynamic policy (utilization-tracked):       avg supply"
                " %.4f V\n",
                r.avg_voltage_dynamic);
    std::printf("-> %.1f%% average undervolt, ~%.1f%% dynamic power "
                "saved, with the same safety distance\n",
                r.voltageSaving() * 100.0, r.powerSaving() * 100.0);
    return 0;
}
