/**
 * @file
 * Resonance hunt: the workload the paper's introduction motivates --
 * experimentally discovering a system's resonance bands, which with
 * hand-crafted programs "can require hundreds (or even thousands) of
 * test runs".
 *
 * The example does it two ways and cross-checks them:
 *  1. electrically, by sweeping the PDN impedance profile (the
 *     package-characterization view, Fig. 7b), and
 *  2. behaviourally, by sweeping dI/dt stressmark stimulus frequencies
 *     and watching the skitter noise (the software view, Fig. 7a).
 */

#include <algorithm>
#include <complex>
#include <cstdio>
#include <iostream>

#include "vnoise/vnoise.hh"

int
main()
{
    using namespace vn;

    // Electrical view: impedance seen from core 0's supply port.
    ChipModel chip;
    auto profile = impedanceProfile(chip.pdn(), 0, 5e3, 1e8, 60);
    std::printf("impedance view: board band at %.1f kHz, die band "
                "('1st droop') at %.2f MHz\n",
                profile.board_resonance_hz / 1e3,
                profile.die_resonance_hz / 1e6);

    // Behavioural view: free-running stressmark sweep.
    CoreModel core;
    StressmarkKit kit =
        StressmarkKit::cached(core, outputPath("vnoise_kit.cache"));
    AnalysisContext ctx;
    ctx.kit = &kit;
    ctx.window = 16e-6;
    ctx.unsync_draws = 3;

    auto freqs = logspace(10e3, 50e6, 13);
    auto points = sweepStimulusFrequency(ctx, freqs, false);

    TextTable table({"Stimulus", "max %p2p", "min VDie (V)"});
    const FreqSweepPoint *peak = &points[0];
    for (const auto &p : points) {
        table.addRow({freqLabel(p.freq_hz), TextTable::num(p.max_p2p, 1),
                      TextTable::num(p.min_v, 4)});
        if (p.max_p2p > peak->max_p2p)
            peak = &p;
    }
    table.print(std::cout);

    std::printf("\nnoisiest stimulus: %s -> the behavioural hunt found "
                "the die resonance band\n",
                freqLabel(peak->freq_hz).c_str());
    double ratio = peak->freq_hz / profile.die_resonance_hz;
    std::printf("agreement with the impedance view: %.2fx\n", ratio);
    return ratio > 0.3 && ratio < 3.0 ? 0 : 1;
}
