/**
 * @file
 * Quickstart: build the chip model, generate one maximum dI/dt
 * stressmark at the die resonance band, run it on all six cores with
 * TOD synchronization, and print the per-core skitter noise readings.
 *
 * This is the minimal end-to-end path through the library:
 *   core model -> stressmark kit -> chip co-simulation -> %p2p noise.
 */

#include <cstdio>
#include <iostream>

#include "vnoise/vnoise.hh"

int
main()
{
    using namespace vn;

    // 1. The core model (zEC12-like: 5.5 GHz, 3-wide dispatch).
    CoreModel core;

    // 2. Run the stressmark generation methodology: EPI profile,
    //    max-power sequence search, min/medium sequences. The result
    //    is cached next to the binary so re-runs are instant.
    StressmarkKit kit =
        StressmarkKit::cached(core, outputPath("vnoise_kit.cache"));

    std::printf("max-power sequence: %s\n",
                kit.maxSequence().toString().c_str());
    std::printf("min-power sequence: %s\n",
                kit.minSequence().toString().c_str());
    std::printf("sequence powers: max=%.2f med=%.2f min=%.2f "
                "(model units)\n\n",
                kit.maxPower(), kit.mediumPower(), kit.minPower());

    // 3. Build a synchronized stressmark in the die resonance band.
    StressmarkSpec spec;
    spec.stimulus_freq_hz = 2.4e6;
    spec.consecutive_events = 1000;
    spec.synchronized = true;
    Stressmark sm = kit.make(spec);
    std::printf("stressmark: %zu high + %zu low instructions per "
                "deltaI event (half period %.0f ns)\n\n",
                sm.high_instrs, sm.low_instrs, sm.half_period * 1e9);

    // 4. Co-simulate all six cores running aligned copies.
    ChipModel chip;
    std::array<CoreActivity, kNumCores> workloads = {
        sm.activity(), sm.activity(), sm.activity(),
        sm.activity(), sm.activity(), sm.activity()};
    ChipRunResult result = chip.run(workloads, 40e-6);

    // 5. Report.
    TextTable table({"Core", "%p2p", "Vmin (V)", "Vmax (V)"});
    for (int c = 0; c < kNumCores; ++c) {
        table.addRow({"core" + std::to_string(c),
                      TextTable::num(result.core[c].p2p, 1),
                      TextTable::num(result.core[c].v_min, 4),
                      TextTable::num(result.core[c].v_max, 4)});
    }
    table.print(std::cout);
    std::printf("\nworst core: %d (%.1f %%p2p), chip power %.0f W, "
                "R-Unit failure: %s\n",
                result.noisiestCore(), result.maxP2p(),
                result.avg_power_watts, result.failed ? "YES" : "no");
    return 0;
}
