/**
 * @file
 * Vmin experiment walkthrough (section III): the "ultimate
 * bullet-proof" margin measurement. The service element lowers the
 * operating voltage 0.5% at a time until the R-Unit reports the first
 * failure, once per workload of interest.
 *
 * Compares three scenarios: idle machine, unsynchronized stressmarks,
 * and fully synchronized stressmarks at the resonance band.
 */

#include <cstdio>
#include <iostream>

#include "vnoise/vnoise.hh"

int
main()
{
    using namespace vn;

    CoreModel core;
    StressmarkKit kit =
        StressmarkKit::cached(core, outputPath("vnoise_kit.cache"));

    ChipConfig config;
    VminExperiment vmin(config); // 0.5% steps, the service element's knob

    StressmarkSpec spec;
    spec.stimulus_freq_hz = 2.4e6;
    spec.consecutive_events = 1000;

    auto run_case = [&](const char *name,
                        const std::array<CoreActivity, kNumCores> &w,
                        double window) {
        auto r = vmin.run(w, window);
        std::printf("  %-22s margin %5.1f%%  (%d voltage steps%s)\n",
                    name, r.bias_at_failure * 100.0, r.steps,
                    r.failed ? "" : ", never failed");
        return r.bias_at_failure;
    };

    std::printf("Vmin experiments (bias at first R-Unit failure):\n");

    ChipModel nominal(config);
    auto idle = nominal.idleActivity();
    run_case("idle", {idle, idle, idle, idle, idle, idle}, 4e-6);

    spec.synchronized = false;
    Stressmark unsync_sm = kit.make(spec);
    Rng rng(123);
    double period = 1.0 / spec.stimulus_freq_hz;
    std::array<CoreActivity, kNumCores> unsync = {
        unsync_sm.activity(period * rng.uniform()),
        unsync_sm.activity(period * rng.uniform()),
        unsync_sm.activity(period * rng.uniform()),
        unsync_sm.activity(period * rng.uniform()),
        unsync_sm.activity(period * rng.uniform()),
        unsync_sm.activity(period * rng.uniform())};
    double m_unsync = run_case("dI/dt, free-running", unsync, 24e-6);

    spec.synchronized = true;
    Stressmark sync_sm = kit.make(spec);
    std::array<CoreActivity, kNumCores> synced = {
        sync_sm.activity(), sync_sm.activity(), sync_sm.activity(),
        sync_sm.activity(), sync_sm.activity(), sync_sm.activity()};
    double m_sync = run_case("dI/dt, synchronized", synced, 24e-6);

    std::printf("\nsynchronization of deltaI events costs %.1f%% of "
                "supply margin on this design\n",
                (m_unsync - m_sync) * 100.0);
    return 0;
}
