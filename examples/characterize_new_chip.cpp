/**
 * @file
 * End-to-end characterization of a *modified* chip design - the
 * workflow a user applies to their own silicon model:
 *
 *  1. describe the design deviations in a key=value config file
 *     (here: a cost-reduced package with half the module decap and a
 *     weaker L3 bridge),
 *  2. locate the resonant bands electrically,
 *  3. regenerate the worst-case stressmarks (the methodology is
 *     design-independent),
 *  4. measure the noise and the Vmin margin, and
 *  5. compare against the baseline design.
 */

#include <cstdio>
#include <iostream>

#include "vnoise/vnoise.hh"

namespace
{

vn::VminResult
marginOf(const vn::ChipConfig &config, const vn::Stressmark &sm)
{
    vn::VminExperiment vmin(config);
    std::array<vn::CoreActivity, vn::kNumCores> w = {
        sm.activity(), sm.activity(), sm.activity(),
        sm.activity(), sm.activity(), sm.activity()};
    return vmin.run(w, 20e-6);
}

} // namespace

int
main()
{
    using namespace vn;

    // 1. The derivative design, written as a config override file the
    //    way a user would keep it in their repository.
    const char *config_path = "cost_reduced_chip.cfg";
    {
        ChipConfig derivative;
        derivative.pdn.c_pkg /= 2.0;      // halve module decap ($$)
        derivative.pdn.r_dom_l3 *= 3.0;   // weaker inter-domain bridge
        saveChipConfig(derivative, config_path);
    }
    ChipConfig modified = loadChipConfig(config_path);
    ChipConfig baseline;

    // 2. Electrical view of both designs.
    ChipModel base_chip(baseline);
    ChipModel mod_chip(modified);
    auto base_z = impedanceProfile(base_chip.pdn(), 0);
    auto mod_z = impedanceProfile(mod_chip.pdn(), 0);
    std::printf("resonant bands   baseline: board %s / die %s\n",
                freqLabel(base_z.board_resonance_hz).c_str(),
                freqLabel(base_z.die_resonance_hz).c_str());
    std::printf("               derivative: board %s / die %s\n\n",
                freqLabel(mod_z.board_resonance_hz).c_str(),
                freqLabel(mod_z.die_resonance_hz).c_str());

    // 3. Stressmarks from the shared methodology kit.
    CoreModel core;
    StressmarkKit kit =
        StressmarkKit::cached(core, outputPath("vnoise_kit.cache"));
    StressmarkSpec spec;
    spec.stimulus_freq_hz = mod_z.die_resonance_hz; // hunt *its* band
    Stressmark sm = kit.make(spec);

    // 4-5. Noise and margin, side by side.
    auto run_noise = [&](ChipModel &chip) {
        std::array<CoreActivity, kNumCores> w = {
            sm.activity(), sm.activity(), sm.activity(),
            sm.activity(), sm.activity(), sm.activity()};
        return chip.run(w, 30e-6);
    };
    auto base_noise = run_noise(base_chip);
    auto mod_noise = run_noise(mod_chip);
    auto base_margin = marginOf(baseline, sm);
    auto mod_margin = marginOf(modified, sm);

    TextTable table({"Design", "max %p2p", "worst Vmin", "margin",
                     "first-failing core"});
    table.addRow({"baseline zEC12",
                  TextTable::num(base_noise.maxP2p(), 1),
                  TextTable::num(
                      base_noise.core[base_noise.noisiestCore()].v_min,
                      4),
                  TextTable::num(base_margin.bias_at_failure * 100.0, 1) +
                      "%",
                  base_margin.failing_core < 0
                      ? "-"
                      : "core" + std::to_string(base_margin.failing_core)});
    table.addRow({"cost-reduced derivative",
                  TextTable::num(mod_noise.maxP2p(), 1),
                  TextTable::num(
                      mod_noise.core[mod_noise.noisiestCore()].v_min, 4),
                  TextTable::num(mod_margin.bias_at_failure * 100.0, 1) +
                      "%",
                  mod_margin.failing_core < 0
                      ? "-"
                      : "core" + std::to_string(mod_margin.failing_core)});
    table.print(std::cout);

    std::printf("\nverdict: the cost reduction costs %.1f%% of supply "
                "margin - exactly the trade the paper's methodology "
                "exists to quantify before shipping\n",
                (base_margin.bias_at_failure -
                 mod_margin.bias_at_failure) *
                    100.0);
    std::remove(config_path);
    return 0;
}
