/**
 * @file
 * Noise-aware workload mapping (section VII-A): a toy scheduler that
 * must place k noisy jobs on the six-core chip and picks the mapping
 * that minimizes worst-case voltage noise.
 *
 * Demonstrates the paper's Fig. 14 insight: packing noisy work into
 * one layout cluster (cores 0/2/4 share an on-chip domain) is worse
 * than spreading it across the clusters.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "vnoise/vnoise.hh"

namespace
{

std::string
mappingString(const vn::Mapping &m)
{
    std::string s;
    for (int c = 0; c < vn::kNumCores; ++c) {
        if (c)
            s += ' ';
        s += m[c] == vn::WorkloadClass::Max ? "dIdt" : "idle";
    }
    return s;
}

} // namespace

int
main()
{
    using namespace vn;

    CoreModel core;
    StressmarkKit kit =
        StressmarkKit::cached(core, outputPath("vnoise_kit.cache"));

    AnalysisContext ctx;
    ctx.kit = &kit;
    ctx.window = 16e-6;
    MappingStudy study(ctx, 2.4e6);

    // The paper's Fig. 14 pair: three noisy jobs on cores {1,4,5}
    // (cross-cluster) vs cores {0,2,4} (one cluster).
    auto place = [](std::initializer_list<int> cores) {
        Mapping m{};
        m.fill(WorkloadClass::Idle);
        for (int c : cores)
            m[c] = WorkloadClass::Max;
        return m;
    };
    auto spread = study.run(place({1, 4, 5}));
    auto packed = study.run(place({0, 2, 4}));
    std::printf("3 jobs spread across clusters {1,4,5}: worst %.1f %%p2p"
                " (core %d)\n",
                spread.max_p2p,
                static_cast<int>(std::max_element(spread.p2p.begin(),
                                                  spread.p2p.end()) -
                                 spread.p2p.begin()));
    std::printf("3 jobs packed in one cluster  {0,2,4}: worst %.1f %%p2p"
                " (core %d)\n\n",
                packed.max_p2p,
                static_cast<int>(std::max_element(packed.p2p.begin(),
                                                  packed.p2p.end()) -
                                 packed.p2p.begin()));

    // The scheduler: exhaustive search per job count.
    std::printf("scheduler search (all C(6,k) placements per k):\n");
    TextTable table({"Jobs", "Best mapping", "Best %p2p", "Worst %p2p",
                     "Reduction"});
    auto opportunities = mappingOpportunity(study);
    for (const auto &o : opportunities) {
        table.addRow({TextTable::num(static_cast<long long>(o.workloads)),
                      mappingString(o.best_mapping),
                      TextTable::num(o.best_noise, 1),
                      TextTable::num(o.worst_noise, 1),
                      TextTable::num(o.reduction(), 1)});
    }
    table.print(std::cout);
    std::printf("\nA noise-aware mapper buys the 'Reduction' column of "
                "%%p2p headroom for free.\n");
    return 0;
}
